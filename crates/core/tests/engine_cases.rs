//! Edge-case battery for the XSQ engine: every output kind × every
//! predicate category, tag collisions between predicates and steps,
//! recursion, mixed content, and failure paths.

use xsq_core::{evaluate, CompileError, VecSink, XsqEngine};

fn eval(q: &str, doc: &str) -> Vec<String> {
    evaluate(q, doc.as_bytes()).unwrap()
}

// ---- every predicate category × buffered and unbuffered orders --------

#[test]
fn attr_predicate_orders() {
    let doc = r#"<r><e id="5"><v>yes</v></e><e><v>no-attr</v></e><e id="9"><v>big</v></e></r>"#;
    assert_eq!(eval("/r/e[@id]/v/text()", doc), ["yes", "big"]);
    assert_eq!(eval("/r/e[@id<=5]/v/text()", doc), ["yes"]);
    assert_eq!(eval("/r/e[@id!=5]/v/text()", doc), ["big"]);
}

#[test]
fn text_predicate_value_before_and_after() {
    // Value (the attribute) is available at begin; text witness comes later.
    let doc = r#"<r><e id="a">match</e><e id="b">other</e></r>"#;
    assert_eq!(eval("/r/e[text()=\"match\"]/@id", doc), ["a"]);
    assert_eq!(eval("/r/e[text()]/@id", doc), ["a", "b"]);
}

#[test]
fn child_exists_witness_after_value() {
    let doc = "<r><e><v>kept</v><w/></e><e><v>dropped</v></e></r>";
    assert_eq!(eval("/r/e[w]/v/text()", doc), ["kept"]);
}

#[test]
fn child_attr_predicate_both_orders() {
    let doc = r#"<r>
        <e><v>after</v><c k="1"/></e>
        <e><c k="2"/><v>before</v></e>
        <e><c/><v>no-attr</v></e>
    </r>"#;
    assert_eq!(eval("/r/e[c@k]/v/text()", doc), ["after", "before"]);
    assert_eq!(eval("/r/e[c@k=2]/v/text()", doc), ["before"]);
}

#[test]
fn child_text_predicate_multiple_children() {
    // Only one of several price children needs to satisfy the test
    // (Example 1's logic), and failure is only known at the end tag.
    let doc = "<r><b><p>14</p><v>x</v><p>10</p></b><b><p>14</p><v>y</v></b></r>";
    assert_eq!(eval("/r/b[p<11]/v/text()", doc), ["x"]);
}

// ---- tag collisions: predicate child = step tag ------------------------

#[test]
fn predicate_child_is_also_the_step() {
    let doc = "<r><b><p>10</p><p>99</p></b><b><p>50</p></b></r>";
    // The p elements are both witness and result.
    assert_eq!(eval("/r/b[p<11]/p/text()", doc), ["10", "99"]);
    assert_eq!(eval("//b[p<11]/p/text()", doc), ["10", "99"]);
}

#[test]
fn child_exists_witness_is_also_the_step() {
    let doc = "<r><b><a>1</a><a>2</a></b><c><a>3</a></c></r>";
    assert_eq!(eval("/r/b[a]/a/text()", doc), ["1", "2"]);
}

#[test]
fn element_named_like_its_parent() {
    // /a[a=1]/a — nested same-name elements everywhere.
    let doc = "<a><a>1</a><a>2</a></a>";
    assert_eq!(eval("/a[a=1]/a/text()", doc), ["1", "2"]);
    assert_eq!(eval("/a[a=9]/a/text()", doc), Vec::<String>::new());
}

// ---- outputs ------------------------------------------------------------

#[test]
fn element_output_under_each_category() {
    assert_eq!(
        eval("/r/e[@id]", r#"<r><e id="1"><x>a</x></e><e/></r>"#),
        [r#"<e id="1"><x>a</x></e>"#]
    );
    assert_eq!(
        eval("/r/e[text()=\"t\"]", "<r><e>t</e><e>u</e></r>"),
        ["<e>t</e>"]
    );
    assert_eq!(
        eval("/r/e[w]", "<r><e><w/>tail</e><e>plain</e></r>"),
        ["<e><w></w>tail</e>"]
    );
    assert_eq!(
        eval("/r/e[c=1]", "<r><e><c>1</c></e><e><c>2</c></e></r>"),
        ["<e><c>1</c></e>"]
    );
}

#[test]
fn element_output_nested_closure_matches_serialize_independently() {
    let doc = "<r><a><a>x</a></a></r>";
    assert_eq!(eval("//a", doc), ["<a><a>x</a></a>", "<a>x</a>"]);
}

#[test]
fn element_output_escapes_content() {
    let doc = "<r><e>1 &lt; 2 &amp; 3</e></r>";
    assert_eq!(eval("/r/e", doc), ["<e>1 &lt; 2 &amp; 3</e>"]);
}

#[test]
fn attribute_output_with_late_predicate() {
    // @id is read at begin; the predicate resolves at the end of e.
    let doc = r#"<r><e id="keep"><w/></e><e id="drop"/></r>"#;
    assert_eq!(eval("/r/e[w]/@id", doc), ["keep"]);
}

#[test]
fn mixed_content_text_runs_are_separate_results() {
    let doc = "<r><e>one<sub/>two<sub/>three</e></r>";
    assert_eq!(eval("/r/e/text()", doc), ["one", "two", "three"]);
}

#[test]
fn aggregations_with_predicates() {
    let doc = "<r><b><ok/><p>1</p></b><b><p>2</p></b><b><ok/><p>4</p></b></r>";
    assert_eq!(eval("/r/b[ok]/p/sum()", doc), ["5"]);
    assert_eq!(eval("/r/b[ok]/p/count()", doc), ["2"]);
    assert_eq!(eval("//b/p/avg()", doc), [format!("{}", 7.0 / 3.0)]);
    assert_eq!(eval("//b[ok]/p/min()", doc), ["1"]);
    assert_eq!(eval("//b[ok]/p/max()", doc), ["4"]);
}

#[test]
fn count_counts_elements_not_text_runs() {
    let doc = "<r><e>a<x/>b</e><e/></r>";
    assert_eq!(eval("/r/e/count()", doc), ["2"]);
}

#[test]
fn sum_of_cleared_items_excludes_them() {
    // Values buffered under a predicate that fails must not be counted.
    let doc = "<r><b><p>100</p></b><b><ok/><p>1</p></b></r>";
    assert_eq!(eval("/r/b[ok]/p/sum()", doc), ["1"]);
}

// ---- wildcards and closures ---------------------------------------------

#[test]
fn wildcard_with_predicate() {
    let doc = r#"<r><x id="1">a</x><y id="2">b</y><z>c</z></r>"#;
    assert_eq!(eval("/r/*[@id]/text()", doc), ["a", "b"]);
    assert_eq!(eval("//*[@id=2]/text()", doc), ["b"]);
}

#[test]
fn closure_on_first_and_last_steps() {
    let doc = "<r><m><b>1</b></m><b>2</b></r>";
    assert_eq!(eval("//b/text()", doc), ["1", "2"]);
    assert_eq!(eval("/r//b/text()", doc), ["1", "2"]);
    assert_eq!(eval("//m//b/text()", doc), ["1"]);
}

#[test]
fn deep_recursion_stress() {
    // 60 levels of <a>, query //a//a//a/text() — many overlapping paths.
    let mut doc = String::new();
    for _ in 0..60 {
        doc.push_str("<a>");
    }
    doc.push('x');
    for _ in 0..60 {
        doc.push_str("</a>");
    }
    // Only the innermost a has direct text; it matches via many paths
    // but must appear exactly once.
    assert_eq!(eval("//a//a//a/text()", &doc), ["x"]);
    assert_eq!(eval("//a//a//a/count()", &doc), ["58"]);
}

#[test]
fn sibling_recursion_duplicate_freedom() {
    let doc = "<a><a><c>1</c></a><a><a><c>2</c></a></a></a>";
    assert_eq!(eval("//a//c/text()", doc), ["1", "2"]);
    assert_eq!(eval("//a//a//c/text()", doc), ["1", "2"]);
    assert_eq!(eval("//a//a//a//c/text()", doc), ["2"]);
}

#[test]
fn closure_predicates_on_recursive_pubs() {
    // Figure 2 shape with the inner pub satisfying and the outer failing.
    let doc = "<root><pub><year>1980</year><pub><year>2005</year>\
               <book><name>Inner</name></book></pub>\
               <book><name>Outer</name></book></pub></root>";
    assert_eq!(eval("//pub[year>2000]//name/text()", doc), ["Inner"]);
    assert_eq!(
        eval("//pub[year<2000]//name/text()", doc),
        ["Inner", "Outer"]
    );
}

// ---- empty and degenerate documents -------------------------------------

#[test]
fn no_matches_everywhere() {
    assert_eq!(
        eval("/nope/x/text()", "<a><x>1</x></a>"),
        Vec::<String>::new()
    );
    assert_eq!(eval("//nothing", "<a/>"), Vec::<String>::new());
    assert_eq!(eval("//nothing/count()", "<a/>"), ["0"]);
    assert_eq!(eval("//nothing/sum()", "<a/>"), ["0"]);
}

#[test]
fn root_element_itself_matches() {
    assert_eq!(eval("/a/text()", "<a>t</a>"), ["t"]);
    assert_eq!(eval("//a/text()", "<a>t</a>"), ["t"]);
    assert_eq!(eval("/a", "<a>t</a>"), ["<a>t</a>"]);
    assert_eq!(eval("/a/@id", "<a id=\"7\">t</a>"), ["7"]);
}

#[test]
fn self_closing_elements() {
    let doc = r#"<r><e id="1"/><e id="2"/></r>"#;
    assert_eq!(eval("/r/e/@id", doc), ["1", "2"]);
    assert_eq!(eval("/r/e", doc), ["<e id=\"1\"></e>", "<e id=\"2\"></e>"]);
    assert_eq!(eval("/r/e/text()", doc), Vec::<String>::new());
}

// ---- numeric comparison semantics at the engine level -------------------

#[test]
fn padded_and_decimal_numbers_compare_numerically() {
    let doc = "<r><b><p> 10.00 </p><v>x</v></b></r>";
    assert_eq!(eval("/r/b[p=10]/v/text()", doc), ["x"]);
    assert_eq!(eval("/r/b[p<10.5]/v/text()", doc), ["x"]);
}

#[test]
fn string_comparison_is_exact() {
    let doc = "<r><b><n>First</n><v>x</v></b></r>";
    assert_eq!(eval("/r/b[n=\"First\"]/v/text()", doc), ["x"]);
    assert_eq!(
        eval("/r/b[n=\"first\"]/v/text()", doc),
        Vec::<String>::new()
    );
}

#[test]
fn contains_predicate() {
    let doc = "<r><s><l>my love is</l><who>A</who></s><s><l>none</l><who>B</who></s></r>";
    assert_eq!(eval("/r/s[l%love]/who/text()", doc), ["A"]);
    assert_eq!(eval("/r/s[l contains 'one']/who/text()", doc), ["B"]);
}

// ---- engine API failure paths -------------------------------------------

#[test]
fn nc_rejects_closures_everywhere_in_the_path() {
    for q in ["//a/text()", "/a//b", "/a/b//c/count()"] {
        assert!(matches!(
            XsqEngine::no_closure().compile_str(q),
            Err(CompileError::Unsupported { .. })
        ));
    }
}

#[test]
fn parse_errors_surface_as_compile_errors() {
    assert!(matches!(
        XsqEngine::full().compile_str("/a[["),
        Err(CompileError::Parse(_))
    ));
}

#[test]
fn malformed_xml_mid_stream_is_an_error_after_partial_results() {
    let compiled = XsqEngine::full().compile_str("//b/text()").unwrap();
    let mut sink = VecSink::new();
    let err = compiled.run_document(b"<a><b>ok</b><b>bad</a>", &mut sink);
    assert!(err.is_err());
    // The valid prefix already streamed out.
    assert_eq!(sink.results, ["ok"]);
}

#[test]
fn document_order_across_interleaved_buffers() {
    // Two books resolve in reverse order; emission must be in document
    // order regardless.
    let doc = "<r>\
        <b><v>1</v><k>yes</k></b>\
        <b><v>2</v><k>yes</k></b>\
        <b><v>3</v><k>yes</k></b>\
        </r>";
    assert_eq!(eval("/r/b[k]/v/text()", doc), ["1", "2", "3"]);
}

#[test]
fn long_location_paths() {
    let doc = "<a><b><c><d><e><f>deep</f></e></d></c></b></a>";
    assert_eq!(eval("/a/b/c/d/e/f/text()", doc), ["deep"]);
    assert_eq!(eval("//a//b//c//d//e//f/text()", doc), ["deep"]);
    assert_eq!(eval("/a/*/c/*/e/*/text()", doc), ["deep"]);
}

#[test]
fn documents_deeper_than_64_levels_exercise_wide_depth_vectors() {
    // Depth vectors use a u64 bitmap up to depth 63 and a wide fallback
    // beyond; drive a real query across the boundary.
    let depth = 100;
    let mut doc = String::new();
    for _ in 0..depth {
        doc.push_str("<n>");
    }
    doc.push_str("<leaf>deep</leaf>");
    for _ in 0..depth {
        doc.push_str("</n>");
    }
    assert_eq!(eval("//leaf/text()", &doc), ["deep"]);
    assert_eq!(eval("//n//leaf/text()", &doc), ["deep"]);
    assert_eq!(eval("//n[leaf]/leaf/text()", &doc), ["deep"]);
    assert_eq!(eval("//n//n//leaf/count()", &doc), ["1"]);
    // And a predicate witnessed across the boundary.
    let mut doc = String::new();
    for _ in 0..70 {
        doc.push_str("<n>");
    }
    doc.push_str("<v>x</v><k>1</k>");
    for _ in 0..70 {
        doc.push_str("</n>");
    }
    assert_eq!(eval("//n[k=1]/v/text()", &doc), ["x"]);
}

// ---- regressions found by the differential property tests ---------------

#[test]
fn regression_witness_and_value_share_one_text_event() {
    // Found by proptest: the text event is simultaneously the predicate
    // witness and the output value; the emit must execute before the
    // same-layer flush (Arc::priority).
    assert_eq!(eval("//a[text()=2]/text()", "<a><a>2</a></a>"), ["2"]);
    assert_eq!(eval("//a[text()=2]/text()", "<a>2</a>"), ["2"]);
}

#[test]
fn regression_result_inside_the_witness_child() {
    // Found by proptest: a result element nested inside the predicate's
    // witness child, arriving after the witness text — needs the second
    // resolution on `</child>` (the paper's Example 7).
    assert_eq!(
        eval("/*[d!=0]//a/text()", "<a><d>-2<a>0</a></d></a>"),
        ["0"]
    );
    // Variants around the same mechanism.
    assert_eq!(
        eval("/*[d!=0]//a", "<a><d>-2<a>0</a></d></a>"),
        ["<a>0</a>"]
    );
    assert_eq!(
        eval("/*[d=5]//a/text()", "<a><d>5<a>in</a></d><a>out</a></a>"),
        ["in", "out"]
    );
}

#[test]
fn predicates_on_every_step() {
    let doc = r#"<a id="1"><b><w/><c><p>5</p><v>hit</v></c></b></a>"#;
    assert_eq!(eval("/a[@id]/b[w]/c[p=5]/v/text()", doc), ["hit"]);
    assert_eq!(
        eval("/a[@id=2]/b[w]/c[p=5]/v/text()", doc),
        Vec::<String>::new()
    );
    assert_eq!(
        eval("/a[@id]/b[nope]/c[p=5]/v/text()", doc),
        Vec::<String>::new()
    );
    assert_eq!(
        eval("/a[@id]/b[w]/c[p=6]/v/text()", doc),
        Vec::<String>::new()
    );
}
