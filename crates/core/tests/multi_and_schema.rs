//! Integration tests for the extension modules: multi-query evaluation,
//! schema analysis, tracing, and dot export working together.

use std::collections::BTreeSet;

use xsq_core::schema::{analyze, optimize, rewrite};
use xsq_core::{QuerySet, VecSink, XsqEngine};
use xsq_xml::dtd::Dtd;
use xsq_xpath::parse_query;

#[test]
fn a_subscription_workload_over_one_stream() {
    // A YFilter-style scenario: many subscribers, one document feed.
    let subscriptions = [
        "//book[author]/name/text()",
        "//book[price<12]/name/text()",
        "//book/@id",
        "//pub[year=2002]//name/text()",
        "//price/sum()",
        "//book/count()",
        "//pub[year=1999]//name/text()",
    ];
    let doc = br#"<root><pub>
        <book id="1"><price>12.00</price><name>First</name><author>A</author>
          <price type="discount">10.00</price></book>
        <book id="2"><price>14.00</price><name>Second</name><author>A</author>
          <author>B</author><price type="discount">12.00</price></book>
        <year>2002</year>
    </pub></root>"#;
    let set = QuerySet::compile(XsqEngine::full(), &subscriptions).unwrap();
    let results = set.run_document(doc).unwrap();
    assert_eq!(results[0], ["First", "Second"]);
    assert_eq!(results[1], ["First"]);
    assert_eq!(results[2], ["1", "2"]);
    assert_eq!(results[3], ["First", "Second"]);
    assert_eq!(results[4], ["48"]);
    assert_eq!(results[5], ["2"]);
    assert!(results[6].is_empty());
}

#[test]
fn multi_runner_memory_is_additive_and_bounded() {
    let set =
        QuerySet::compile(XsqEngine::full(), &["//a[z]/v/text()", "//a[z]/w/text()"]).unwrap();
    let doc = "<r><a><v>1</v><w>2</w><z/></a></r>".to_string();
    let doc = format!("<all>{doc}</all>");
    // Invalid nesting? <all><r>... is fine.
    let mut runner = set.runner();
    let mut sinks = vec![VecSink::new(), VecSink::new()];
    for ev in xsq_xml::parse_to_events(doc.as_bytes()).unwrap() {
        runner.feed_all(&ev, &mut sinks);
    }
    let mem = runner.memory();
    assert!(mem.peak_configs >= 2);
    let stats = runner.finish_all(&mut sinks);
    assert_eq!(stats.len(), 2);
    assert_eq!(sinks[0].results, ["1"]);
    assert_eq!(sinks[1].results, ["2"]);
}

#[test]
fn schema_pipeline_end_to_end() {
    // DTD text → analysis → rewrite → identical results, fewer configs.
    let dtd = Dtd::parse(
        "<!ELEMENT lib (shelf*)> <!ELEMENT shelf (book*)>\
         <!ELEMENT book (title, author*)> <!ELEMENT title (#PCDATA)>\
         <!ELEMENT author (#PCDATA)>",
    )
    .unwrap();
    assert!(!dtd.is_recursive());
    let q = parse_query("//lib//shelf//book[author]//title/text()").unwrap();
    let (optimized, analysis) = optimize(&q, &dtd);
    assert!(analysis.satisfiable);
    assert_eq!(
        optimized.to_string(),
        "/lib/shelf/book[author]/title/text()"
    );

    let doc = b"<lib><shelf><book><title>T</title><author>A</author></book>\
                <book><title>U</title></book></shelf></lib>";
    let full = xsq_core::evaluate(&q.to_string(), doc).unwrap();
    let opt = xsq_core::evaluate(&optimized.to_string(), doc).unwrap();
    assert_eq!(full, opt);
    assert_eq!(full, ["T"]);

    // The rewritten automaton is smaller (no closure self-loops).
    let h_full = XsqEngine::full().compile(&q).unwrap();
    let h_opt = XsqEngine::full().compile(&optimized).unwrap();
    assert!(h_opt.hpdt().arc_count() < h_full.hpdt().arc_count());
}

#[test]
fn partial_rewrite_preserves_unprovable_closures() {
    let dtd = Dtd::from_edges(&[("r", &["s", "a"]), ("s", &["a"]), ("a", &["t"]), ("t", &[])]);
    // a occurs at depths 2 and 3 under r → //a is NOT a child step; t
    // occurs only directly under a → //t rewrites.
    let q = parse_query("//a//t/text()").unwrap();
    let analysis = analyze(&q, &dtd, &BTreeSet::new());
    let (optimized, changed) = rewrite(&q, &analysis);
    assert!(changed);
    assert_eq!(optimized.to_string(), "//a/t/text()");
    let doc = b"<r><s><a><t>deep</t></a></s><a><t>shallow</t></a></r>";
    assert_eq!(
        xsq_core::evaluate("//a//t/text()", doc).unwrap(),
        xsq_core::evaluate(&optimized.to_string(), doc).unwrap()
    );
}

#[test]
fn dot_export_for_every_template_category() {
    for q in [
        "/a/b/text()",
        "/a[@x]/b",
        "/a[text()=1]/b/@id",
        "/a[b]/c/count()",
        "/a[b@x=1]/c/text()",
        "/a[b=1]/c/text()",
        "//a[b]//c",
    ] {
        let compiled = XsqEngine::full().compile_str(q).unwrap();
        let dot = xsq_core::dot::to_dot(compiled.hpdt());
        assert!(dot.contains("digraph"), "{q}");
        // Sanity: balanced braces.
        assert_eq!(
            dot.matches('{').count(),
            dot.matches('}').count(),
            "unbalanced dot for {q}"
        );
    }
}

#[test]
fn trace_step_counts_match_events_for_multi_runner_queries() {
    let compiled = XsqEngine::full().compile_str("//b/text()").unwrap();
    let mut steps = 0usize;
    let mut tracer = |_s: xsq_core::trace::TraceStep| steps += 1;
    let mut runner = compiled.runner();
    runner.set_tracer(&mut tracer);
    let mut sink = VecSink::new();
    let events = xsq_xml::parse_to_events(b"<a><b>1</b><c/></a>").unwrap();
    for e in &events {
        runner.feed(e, &mut sink);
    }
    runner.finish(&mut sink);
    assert_eq!(steps, events.len());
    assert_eq!(sink.results, ["1"]);
}
