//! Integration tests for the static analyzer: verifier diagnostics on
//! corrupted transducers, analyzer-driven engine auto-selection, pruning
//! on merged query sets, and buffer elision — all over real documents.

use std::sync::Arc;

use xsq_core::build::{build_hpdt, build_merged_hpdt};
use xsq_core::{
    analyze, evaluate, CompileError, QueryIndex, VecQuerySink, VecSink, XPathEngine, XsqEngine,
    XsqF,
};
use xsq_xpath::parse_query;

/// Paper walkthrough queries (§2 Examples, Fig. 11, §7 experiments).
const PAPER_QUERIES: &[&str] = &[
    "/pub[year=2002]/book[price<11]/author",
    "//pub[year>2000]//book[author]//name/text()",
    "/PLAY/ACT/SCENE/SPEECH[LINE%love]/SPEAKER/text()",
    "/dblp/inproceedings[author]/title/text()",
    "//pub[year]//book[@id]/title/text()",
];

const DOC: &[u8] = b"<pub><book id=\"1\"><name>First</name><title>T1</title>\
    <author>A</author><price>10</price></book>\
    <book id=\"2\"><name>Second</name><price>14</price></book>\
    <year>2002</year></pub>";

#[test]
fn paper_queries_analyze_clean() {
    for q in PAPER_QUERIES {
        let a = analyze(&parse_query(q).unwrap()).unwrap();
        assert!(
            !xsq_core::analyze::has_errors(&a.diagnostics),
            "{q}: {:?}",
            a.diagnostics
        );
        // A fresh single-query build has no dead structure to prune.
        assert!(!a.stats.changed(), "{q}: {:?}", a.stats);
    }
}

#[test]
fn corrupted_hpdt_yields_a_useful_diagnostic() {
    let mut hpdt = build_hpdt(&parse_query("/a[b]/c/text()").unwrap()).unwrap();
    let victim = *hpdt
        .queue_index
        .keys()
        .max_by_key(|id| (id.layer, id.seq))
        .unwrap();
    hpdt.queue_index.remove(&victim);
    let diags = xsq_core::verify(&hpdt);
    assert!(xsq_core::analyze::has_errors(&diags));
    // The diagnostic names the missing buffer, not just "invalid".
    let d = diags.iter().find(|d| d.is_error()).unwrap();
    assert!(
        d.to_string().contains(&victim.to_string()) || d.code.starts_with("queue-index"),
        "unhelpful diagnostic: {d}"
    );
}

#[test]
fn subscribing_a_corrupted_hpdt_is_rejected_not_a_panic() {
    let mut hpdt = build_hpdt(&parse_query("/a[b]/c/text()").unwrap()).unwrap();
    let victim = *hpdt
        .queue_index
        .keys()
        .max_by_key(|id| (id.layer, id.seq))
        .unwrap();
    hpdt.queue_index.remove(&victim);
    let mut index = QueryIndex::new(XsqEngine::full());
    let err = index.subscribe_compiled(Arc::new(hpdt)).unwrap_err();
    assert!(matches!(err, CompileError::Malformed { .. }), "{err}");
    assert_eq!(index.len(), 0);
}

#[test]
fn arc_retargeting_is_caught_by_the_verifier() {
    let mut hpdt = build_hpdt(&parse_query("/a/b/text()").unwrap()).unwrap();
    // Point some arc out of bounds — the classic deserialization bug.
    hpdt.arcs[0][0].target = 999;
    let diags = xsq_core::verify(&hpdt);
    assert!(diags.iter().any(|d| d.code == "arc-target-out-of-bounds"));
}

#[test]
fn auto_nc_results_match_forced_scan_all_on_paper_queries() {
    // Closure-free paper queries are proven deterministic and auto-route
    // to first-match execution; results must be byte-identical to what
    // the nondeterministic scan-all path computes.
    let docs: &[&[u8]] = &[
        DOC,
        b"<PLAY><ACT><SCENE><SPEECH><LINE>my love is deep</LINE>\
          <SPEAKER>Juliet</SPEAKER></SPEECH><SPEECH><LINE>aside</LINE>\
          <SPEAKER>Nurse</SPEAKER></SPEECH></SCENE></ACT></PLAY>",
        b"<dblp><inproceedings><author>P</author><title>XSQ</title>\
          </inproceedings><inproceedings><title>Orphan</title>\
          </inproceedings></dblp>",
    ];
    for q in PAPER_QUERIES {
        let compiled = XsqEngine::full().compile_str(q).unwrap();
        if !compiled.auto_nc() {
            continue; // closure queries stay on XSQ-F
        }
        for doc in docs {
            let mut fast = VecSink::new();
            compiled.run_document(doc, &mut fast).unwrap();
            // The NC engine (forced first-match) must agree...
            let nc = XsqEngine::no_closure().compile_str(q).unwrap();
            let mut forced = VecSink::new();
            nc.run_document(doc, &mut forced).unwrap();
            assert_eq!(fast.results, forced.results, "{q}");
            // ...and so must the plain evaluate() entry point.
            assert_eq!(fast.results, evaluate(q, doc).unwrap(), "{q}");
        }
    }
}

#[test]
fn run_report_engine_field_tracks_auto_selection() {
    let r = XsqF.run("/pub/book/name/text()", DOC).unwrap();
    assert_eq!(r.engine, "XSQ-NC (auto)");
    let r = XsqF.run("//book/name/text()", DOC).unwrap();
    assert_eq!(r.engine, "XSQ-F");
}

#[test]
fn merged_set_with_tombstones_prunes_and_answers_identically() {
    // A standing set where some subscriptions are statically dead
    // (relational comparison against a non-numeric constant). Pruning
    // must shrink the merged transducer and change no results.
    let texts = [
        "/pub/book/name/text()",
        "/pub/book[price<11]/name/text()",
        "/pub/book[price<bogus]/name/text()", // tombstone: never true
        "/pub/year/text()",
    ];
    let queries: Vec<_> = texts.iter().map(|q| parse_query(q).unwrap()).collect();
    let merged = build_merged_hpdt(&queries).unwrap();
    let (pruned, stats) = xsq_core::prune(&merged);
    assert!(
        stats.states_after < stats.states_before,
        "tombstone did not shrink the merged HPDT: {stats:?}"
    );
    assert!(!xsq_core::analyze::has_errors(&xsq_core::verify(&pruned)));

    // The index (which prunes internally) agrees with per-query engines.
    let mut index = QueryIndex::new(XsqEngine::full());
    let ids = index.subscribe_group(&texts).unwrap();
    let mut sink = VecQuerySink::new();
    index.run_document(DOC, &mut sink).unwrap();
    for (q, &id) in texts.iter().zip(&ids) {
        assert_eq!(sink.of(id), evaluate(q, DOC).unwrap(), "mismatch for {q}");
    }
    assert_eq!(sink.of(ids[2]), Vec::<&str>::new());
}

#[test]
fn buffer_elision_does_not_change_results() {
    // Predicate-free and category-1 queries run with zero queues; their
    // results must match the general path's semantics exactly.
    for (q, expected) in [
        ("/pub/book/name/text()", vec!["First", "Second"]),
        ("/pub/book/@id", vec!["1", "2"]),
        ("/pub/book[@id]/name/text()", vec!["First", "Second"]),
    ] {
        let compiled = XsqEngine::full().compile_str(q).unwrap();
        assert!(!compiled.hpdt().buffered, "{q} should elide buffers");
        assert_eq!(evaluate(q, DOC).unwrap(), expected, "{q}");
    }
    // Sanity: a buffering query still buffers.
    let compiled = XsqEngine::full()
        .compile_str("/pub[year=2002]/book/name/text()")
        .unwrap();
    assert!(compiled.hpdt().buffered);
    assert_eq!(
        evaluate("/pub[year=2002]/book/name/text()", DOC).unwrap(),
        vec!["First", "Second"]
    );
}

#[test]
fn analysis_reports_buffer_classes_for_fig_11_query() {
    let a = analyze(&parse_query("//pub[year>2000]//book[author]//name/text()").unwrap()).unwrap();
    assert!(a.plan.buffered);
    assert!(a.plan.live_buffers() > 0);
    assert!(!a.proven_deterministic);
    assert_eq!(a.engine, "XSQ-F");
}
