//! One function per table/figure of the paper's evaluation (§6).
//!
//! Query adaptations (the paper: "we modify the XPath queries as needed
//! to ensure that queries convey the semantics"):
//!
//! * the generated SHAKE collection has a `PLAYS` document element, so
//!   Q1/Q2 are prefixed with `/PLAYS`;
//! * the Fig. 21 Toxgene template nests its `<a>` groups under a `doc`
//!   element, so its queries are spelled `/doc/a[…]` (keeping XSQ-NC,
//!   which has no closure axis, in the comparison);
//! * Fig. 19's XMLTK runs the predicate-free variant of the query and
//!   XQEngine drops out beyond 32 K elements — both straight from the
//!   paper's own footnotes.

use xsq_baselines::{GalaxLike, JoostLike, SaxonLike, XmltkLike, XqEngineLike};
use xsq_core::{XPathEngine, XsqF, XsqNc};
use xsq_xml::dataset_stats;

use crate::datasets::{self, Scale};
use crate::table::Table;
use crate::throughput::{fmt_rel, measure, pure_parse_time};

/// Shared experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    pub scale: Scale,
    /// Best-of-N timing repeats.
    pub repeats: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            scale: Scale::default(),
            repeats: 3,
        }
    }
}

fn engines() -> Vec<Box<dyn XPathEngine>> {
    xsq_baselines::all_engines()
}

/// Fig. 14: the system feature matrix.
pub fn fig14() -> Table {
    let mut t = Table::new(
        "Fig. 14 — System features",
        &[
            "Name",
            "Support",
            "Streaming",
            "Multiple predicates",
            "Closure",
            "Aggregation",
            "Buffered predicate evaluation",
        ],
    );
    let yes = |b: bool| if b { "X" } else { "" }.to_string();
    for e in engines() {
        let c = e.capabilities();
        t.row(vec![
            e.name().to_string(),
            c.language.to_string(),
            yes(c.streaming),
            yes(c.multiple_predicates),
            yes(c.closures),
            yes(c.aggregation),
            yes(c.buffered_predicate_eval),
        ]);
    }
    t
}

/// Fig. 15: dataset statistics (for the *generated* datasets).
pub fn fig15(cfg: Config) -> Table {
    let mut t = Table::new(
        "Fig. 15 — Dataset descriptions (generated stand-ins)",
        &[
            "Name",
            "Size (MB)",
            "Text size (MB)",
            "Elements (K)",
            "Avg/Max depth",
            "Avg tag length",
        ],
    );
    for (name, doc) in datasets::standard_sized(cfg.scale) {
        let s = dataset_stats(doc.as_bytes()).expect("generated data is well-formed");
        t.row(vec![
            name.to_string(),
            format!("{:.2}", s.size_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.2}", s.text_bytes as f64 / (1024.0 * 1024.0)),
            format!("{:.1}", s.elements as f64 / 1000.0),
            format!("{:.2}/{}", s.avg_depth, s.max_depth),
            format!("{:.2}", s.avg_tag_length),
        ]);
    }
    t.note("shapes target the paper's Fig. 15; absolute sizes are scaled to the harness --scale");
    t
}

/// The three SHAKE queries of Fig. 16.
pub const SHAKE_QUERIES: [(&str, &str); 3] = [
    (
        "Q1",
        "/PLAYS/PLAY/ACT/SCENE/SPEECH[LINE%love]/SPEAKER/text()",
    ),
    ("Q2", "/PLAYS/PLAY/ACT/SCENE/SPEECH/SPEAKER/text()"),
    ("Q3", "//ACT//SPEAKER/text()"),
];

/// Fig. 16: relative throughput of the systems on the SHAKE queries.
pub fn fig16(cfg: Config) -> Table {
    let doc = datasets::equal_sized("SHAKE", cfg.scale);
    let pure = pure_parse_time(doc.as_bytes(), cfg.repeats);
    let mut t = Table::new(
        "Fig. 16 — Relative throughput per query (SHAKE)",
        &["System", "Q1", "Q2", "Q3"],
    );
    for e in engines() {
        let mut row = vec![e.name().to_string()];
        for (_, q) in SHAKE_QUERIES {
            row.push(fmt_rel(&measure(
                e.as_ref(),
                q,
                doc.as_bytes(),
                pure,
                cfg.repeats,
            )));
        }
        t.row(row);
    }
    for (name, q) in SHAKE_QUERIES {
        t.note(format!("{name}: {q}"));
    }
    t.note("'-' = query unsupported by that system (cf. Fig. 14)");
    t
}

/// The per-dataset queries of Fig. 17.
pub const DATASET_QUERIES: [(&str, &str); 4] = [
    ("SHAKE", "/PLAYS/PLAY/ACT/SCENE/SPEECH/SPEAKER/text()"),
    (
        "NASA",
        "/datasets/dataset/reference/source/other/name/text()",
    ),
    ("DBLP", "/dblp/article/title/text()"),
    (
        "PSD",
        "/ProteinDatabase/ProteinEntry/reference/refinfo/authors/author/text()",
    ),
];

/// Fig. 17: relative throughput across the four datasets.
pub fn fig17(cfg: Config) -> Table {
    let mut t = Table::new(
        "Fig. 17 — Relative throughput per dataset",
        &["System", "SHAKE", "NASA", "DBLP", "PSD"],
    );
    let mut columns = Vec::new();
    for (name, q) in DATASET_QUERIES {
        let doc = datasets::equal_sized(name, cfg.scale);
        let pure = pure_parse_time(doc.as_bytes(), cfg.repeats);
        columns.push((q, doc, pure));
    }
    for e in engines() {
        let mut row = vec![e.name().to_string()];
        for (q, doc, pure) in &columns {
            row.push(fmt_rel(&measure(
                e.as_ref(),
                q,
                doc.as_bytes(),
                *pure,
                cfg.repeats,
            )));
        }
        t.row(row);
    }
    for (name, q) in DATASET_QUERIES {
        t.note(format!("{name}: {q}"));
    }
    t
}

/// Fig. 18: per-phase times on the SHAKE Q2 query.
pub fn fig18(cfg: Config) -> Table {
    let doc = datasets::equal_sized("SHAKE", cfg.scale);
    let query = SHAKE_QUERIES[1].1;
    let mut t = Table::new(
        "Fig. 18 — Building / preprocessing / querying time (SHAKE, Q2)",
        &[
            "System",
            "Build (ms)",
            "Preprocess (ms)",
            "Query (ms)",
            "Total (ms)",
        ],
    );
    let pure = pure_parse_time(doc.as_bytes(), cfg.repeats);
    t.row(vec![
        "PureParser".to_string(),
        "0.00".into(),
        "0.00".into(),
        format!("{:.2}", pure.as_secs_f64() * 1e3),
        format!("{:.2}", pure.as_secs_f64() * 1e3),
    ]);
    for e in engines() {
        match e.run(query, doc.as_bytes()) {
            Err(_) => t.row(vec![
                e.name().to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
            Ok(r) => {
                let ms = |d: std::time::Duration| format!("{:.2}", d.as_secs_f64() * 1e3);
                t.row(vec![
                    e.name().to_string(),
                    ms(r.timings.compile),
                    ms(r.timings.preprocess),
                    ms(r.timings.query),
                    ms(r.timings.total()),
                ]);
            }
        }
    }
    t.note("streaming systems have no preprocessing phase and return first results immediately");
    t
}

/// Fig. 19: memory vs. input size on DBLP excerpts.
pub fn fig19(cfg: Config) -> Table {
    let query = "/dblp/inproceedings[author]/title/text()";
    let xmltk_query = "/dblp/inproceedings/title/text()";
    let mut t = Table::new(
        "Fig. 19 — Peak memory (KB) querying DBLP excerpts",
        &[
            "Size (KB)",
            "XSQ-F",
            "XSQ-NC",
            "XMLTK",
            "Saxon",
            "Galax",
            "Joost",
            "XQEngine",
        ],
    );
    let kb = |b: u64| format!("{:.0}", b as f64 / 1024.0);
    for (size, doc) in datasets::dblp_excerpts(cfg.scale, 5) {
        let mut row = vec![format!("{:.0}", size as f64 / 1024.0)];
        for (engine, q) in [
            (&XsqF as &dyn XPathEngine, query),
            (&XsqNc, query),
            (&XmltkLike, xmltk_query),
            (&SaxonLike, query),
            (&GalaxLike, query),
            (&JoostLike, query),
            (&XqEngineLike, query),
        ] {
            row.push(match engine.run(q, doc.as_bytes()) {
                Ok(r) => kb(r.memory.total_peak_bytes()),
                Err(_) => "-".into(),
            });
        }
        t.row(row);
    }
    t.note(format!("query: {query}"));
    t.note(format!(
        "XMLTK runs the predicate-free variant: {xmltk_query} (paper, Fig. 19 note 1)"
    ));
    t.note("XQEngine drops out beyond 32K elements per document (paper, Fig. 19 note 2)");
    // The flat streaming rows have a static explanation: against the
    // dblp DTD the bound analyzer proves the query buffers ≤ K items
    // regardless of input size. Print the proof next to the empirics.
    let dtd_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../data/dblp.dtd");
    if let Ok(dtd_text) = std::fs::read_to_string(dtd_path) {
        if let (Ok(dtd), Ok(parsed)) = (
            xsq_xml::dtd::Dtd::parse(&dtd_text),
            xsq_xpath::parse_query(query),
        ) {
            if let Ok(analysis) = xsq_core::analyze_with_dtd(&parsed, Some(&dtd)) {
                t.note(format!(
                    "static bound (data/dblp.dtd): {} — XSQ rows must stay under it",
                    analysis.bound.bound
                ));
            }
        }
    }
    t
}

/// Fig. 20: memory vs. input size on recursive synthetic data with a
/// closure query.
pub fn fig20(cfg: Config) -> Table {
    let query = "//pub[year]//book[@id]/title/text()";
    let mut t = Table::new(
        "Fig. 20 — Peak memory (KB) on recursive data, closure query",
        &[
            "Size (KB)",
            "XSQ-F",
            "XSQ-NC",
            "XMLTK",
            "Saxon",
            "Galax",
            "Joost",
        ],
    );
    let kb = |b: u64| format!("{:.0}", b as f64 / 1024.0);
    for (size, doc) in datasets::recursive_sweep(cfg.scale, 4) {
        let mut row = vec![format!("{:.0}", size as f64 / 1024.0)];
        for engine in [
            &XsqF as &dyn XPathEngine,
            &XsqNc,
            &XmltkLike,
            &SaxonLike,
            &GalaxLike,
            &JoostLike,
        ] {
            row.push(match engine.run(query, doc.as_bytes()) {
                Ok(r) => kb(r.memory.total_peak_bytes()),
                Err(_) => "-".into(),
            });
        }
        t.row(row);
    }
    t.note(format!(
        "query: {query} (IBM-generator data, nesting 15, repeats 20)"
    ));
    t.note("XSQ-NC cannot handle the closure axis; XMLTK cannot handle the predicates (paper, Fig. 20 note 1)");
    t
}

/// The three Fig. 21 queries over the ordering template.
pub const ORDERING_QUERIES: [(&str, &str); 3] = [
    ("/a[prior=0]", "/doc/a[prior=0]"),
    ("/a[posterior=0]", "/doc/a[posterior=0]"),
    ("/a[@id=0]", "/doc/a[@id=0]"),
];

/// Fig. 21: effect of data ordering on throughput.
pub fn fig21(cfg: Config) -> Table {
    let doc = datasets::ordering(cfg.scale);
    let pure = pure_parse_time(doc.as_bytes(), cfg.repeats);
    let mut t = Table::new(
        "Fig. 21 — Effect of data ordering on throughput (relative)",
        &["System", "/a[prior=0]", "/a[posterior=0]", "/a[@id=0]"],
    );
    for engine in [&XsqNc as &dyn XPathEngine, &XsqF, &SaxonLike] {
        let mut row = vec![engine.name().to_string()];
        for (_, q) in ORDERING_QUERIES {
            row.push(fmt_rel(&measure(
                engine,
                q,
                doc.as_bytes(),
                pure,
                cfg.repeats,
            )));
        }
        t.row(row);
    }
    t.note("all three queries return empty results; they differ only in when the predicate can be falsified");
    t
}

/// Fig. 22: effect of result size on throughput.
pub fn fig22(cfg: Config) -> Table {
    let doc = datasets::colors(cfg.scale);
    let pure = pure_parse_time(doc.as_bytes(), cfg.repeats);
    let mut t = Table::new(
        "Fig. 22 — Effect of result size on throughput (relative)",
        &["System", "/a/red (10%)", "/a/green (30%)", "/a/blue (60%)"],
    );
    for engine in [
        &XsqNc as &dyn XPathEngine,
        &XsqF,
        &XmltkLike,
        &SaxonLike,
        &JoostLike,
    ] {
        let mut row = vec![engine.name().to_string()];
        for q in ["/a/red", "/a/green", "/a/blue"] {
            row.push(fmt_rel(&measure(
                engine,
                q,
                doc.as_bytes(),
                pure,
                cfg.repeats,
            )));
        }
        t.row(row);
    }
    t
}

/// Appendix (beyond the paper): relative throughput on the XMark-like
/// auction workload — the standard XML benchmark of the era, with
/// recursive description markup exercising the closure machinery.
pub fn xmark_appendix(cfg: Config) -> Table {
    let doc = xsq_datagen::xmark::generate(cfg.scale.seed, cfg.scale.bytes);
    let pure = pure_parse_time(doc.as_bytes(), cfg.repeats);
    let mut headers: Vec<&str> = vec!["System"];
    let labels = ["A1", "A2", "A3", "A4", "A5", "A6"];
    headers.extend(labels);
    let mut t = Table::new(
        "Appendix — Relative throughput on the XMark-like workload",
        &headers,
    );
    for e in engines() {
        let mut row = vec![e.name().to_string()];
        for q in xsq_datagen::xmark::QUERIES {
            row.push(fmt_rel(&measure(
                e.as_ref(),
                q,
                doc.as_bytes(),
                pure,
                cfg.repeats,
            )));
        }
        t.row(row);
    }
    for (l, q) in labels.iter().zip(xsq_datagen::xmark::QUERIES) {
        t.note(format!("{l}: {q}"));
    }
    t
}

/// All experiments in figure order.
pub fn all(cfg: Config) -> Vec<Table> {
    vec![
        fig14(),
        fig15(cfg),
        fig16(cfg),
        fig17(cfg),
        fig18(cfg),
        fig19(cfg),
        fig20(cfg),
        fig21(cfg),
        fig22(cfg),
    ]
}

/// Look up one experiment by id ("fig14" … "fig22").
pub fn by_name(name: &str, cfg: Config) -> Option<Table> {
    match name {
        "fig14" => Some(fig14()),
        "fig15" => Some(fig15(cfg)),
        "fig16" => Some(fig16(cfg)),
        "fig17" => Some(fig17(cfg)),
        "fig18" => Some(fig18(cfg)),
        "fig19" => Some(fig19(cfg)),
        "fig20" => Some(fig20(cfg)),
        "fig21" => Some(fig21(cfg)),
        "fig22" => Some(fig22(cfg)),
        "xmark" => Some(xmark_appendix(cfg)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Config {
        Config {
            scale: Scale {
                bytes: 20_000,
                seed: 5,
            },
            repeats: 1,
        }
    }

    #[test]
    fn fig14_lists_all_systems() {
        let t = fig14();
        assert_eq!(t.rows.len(), 7);
        let xsqf = &t.rows[0];
        assert_eq!(xsqf[0], "XSQ-F");
        assert_eq!(xsqf[4], "X"); // closure support
    }

    #[test]
    fn fig15_has_four_datasets() {
        let t = fig15(tiny());
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn fig16_xmltk_skips_the_predicate_query() {
        let t = fig16(tiny());
        let xmltk = t.rows.iter().find(|r| r[0] == "XMLTK").unwrap();
        assert_eq!(xmltk[1], "-"); // Q1 has a predicate
        assert_ne!(xmltk[2], "-"); // Q2 is a plain path
    }

    #[test]
    fn fig19_streaming_memory_is_flat_and_dom_linear() {
        let t = fig19(tiny());
        let first = &t.rows[0];
        let last = t.rows.last().unwrap();
        let get = |row: &Vec<String>, i: usize| row[i].parse::<f64>().unwrap();
        // XSQ-F (col 1) stays within a small factor across a 5× size range…
        let xsqf_growth = (get(last, 1) + 1.0) / (get(first, 1) + 1.0);
        assert!(xsqf_growth < 3.0, "XSQ-F memory grew {xsqf_growth}×");
        // …while Saxon (col 4) grows with the input.
        let saxon_growth = get(last, 4) / get(first, 4);
        assert!(saxon_growth > 3.0, "Saxon memory grew only {saxon_growth}×");
    }

    #[test]
    fn fig20_notes_the_incapable_systems() {
        let t = fig20(tiny());
        for row in &t.rows {
            assert_eq!(row[2], "-", "XSQ-NC cannot run the closure query");
            assert_eq!(row[3], "-", "XMLTK cannot run the predicates");
        }
    }

    #[test]
    fn fig17_throughput_columns_are_populated() {
        let t = fig17(tiny());
        // XSQ-F supports every dataset query.
        let xsqf = t.rows.iter().find(|r| r[0] == "XSQ-F").unwrap();
        for cell in &xsqf[1..] {
            assert!(cell.parse::<f64>().is_ok(), "bad cell {cell}");
        }
    }

    #[test]
    fn fig18_streaming_engines_have_no_preprocessing() {
        let t = fig18(tiny());
        for name in ["XSQ-F", "XSQ-NC", "XMLTK", "Joost"] {
            let row = t.rows.iter().find(|r| r[0] == name).unwrap();
            assert_eq!(row[2], "0.00", "{name} must not preprocess");
        }
        let saxon = t.rows.iter().find(|r| r[0] == "Saxon").unwrap();
        assert!(saxon[2].parse::<f64>().unwrap() > 0.0);
    }

    /// Larger scale + best-of-5 for the timing-shape assertions, which
    /// would otherwise be noise-prone on a loaded machine.
    fn timing_cfg() -> Config {
        Config {
            scale: Scale {
                bytes: 128 * 1024,
                seed: 5,
            },
            repeats: 5,
        }
    }

    #[test]
    fn fig21_id_query_is_fastest_for_xsq() {
        let t = fig21(timing_cfg());
        let nc = t.rows.iter().find(|r| r[0] == "XSQ-NC").unwrap();
        let prior: f64 = nc[1].parse().unwrap();
        let id: f64 = nc[3].parse().unwrap();
        assert!(
            id > prior,
            "falsify-at-begin must beat falsify-at-end ({id} vs {prior})"
        );
    }

    #[test]
    fn fig22_xsq_nc_is_result_size_sensitive() {
        let t = fig22(timing_cfg());
        let nc = t.rows.iter().find(|r| r[0] == "XSQ-NC").unwrap();
        let red: f64 = nc[1].parse().unwrap();
        let blue: f64 = nc[3].parse().unwrap();
        assert!(
            red > blue,
            "10% results must be faster than 60% ({red} vs {blue})"
        );
    }

    #[test]
    fn xmark_appendix_runs() {
        let t = xmark_appendix(tiny());
        assert_eq!(t.rows.len(), 7);
        // XSQ-F supports every XMark query.
        let xsqf = &t.rows[0];
        assert!(xsqf[1..].iter().all(|c| c != "-"), "{xsqf:?}");
    }

    #[test]
    fn by_name_resolves_every_figure() {
        for name in ["fig14", "fig15", "fig21", "fig22", "xmark"] {
            assert!(by_name(name, tiny()).is_some(), "{name}");
        }
        assert!(by_name("fig99", tiny()).is_none());
    }
}
