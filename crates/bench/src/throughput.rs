//! Relative-throughput measurement (§6.2 methodology).

use std::time::{Duration, Instant};

use xsq_core::XPathEngine;
use xsq_xml::PureParser;

/// Result of one engine measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Engine throughput / PureParser throughput on the same bytes,
    /// i.e. `pure_time / engine_time`. 1.0 means "as fast as parsing
    /// alone"; a DOM engine that parses twice-equivalent work lands
    /// around 0.3–0.5.
    pub relative_throughput: f64,
    /// Total engine wall time (all phases).
    pub total: Duration,
    /// Result count (sanity check across engines).
    pub results: usize,
}

/// Best-of-`repeats` wall time of `f`.
fn best_of<T>(repeats: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..repeats.max(1) {
        let t = Instant::now();
        let v = f();
        let d = t.elapsed();
        if d < best {
            best = d;
        }
        last = Some(v);
    }
    (best, last.expect("at least one repeat"))
}

/// Time the PureParser over a document (the normalization baseline).
pub fn pure_parse_time(document: &[u8], repeats: usize) -> Duration {
    let (d, _) = best_of(repeats, || {
        PureParser::run(document).expect("well-formed dataset")
    });
    d
}

/// Measure one engine on one query/document pair, normalized by a
/// pre-measured PureParser time. Returns `None` if the engine does not
/// support the query (Fig. 14's empty cells).
pub fn measure(
    engine: &dyn XPathEngine,
    query: &str,
    document: &[u8],
    pure: Duration,
    repeats: usize,
) -> Option<Measurement> {
    // Probe support first so unsupported engines do not cost repeats.
    engine.run(query, document).ok()?;
    let (total, report) = best_of(repeats, || {
        engine.run(query, document).expect("probed as supported")
    });
    Some(Measurement {
        relative_throughput: pure.as_secs_f64() / total.as_secs_f64(),
        total,
        results: report.results.len(),
    })
}

/// Format a relative throughput as the paper's 0..1 bar heights.
pub fn fmt_rel(m: &Option<Measurement>) -> String {
    match m {
        Some(m) => format!("{:.3}", m.relative_throughput),
        None => "-".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_engine_is_within_constant_factor_of_pure_parsing() {
        let doc = xsq_datagen::dblp::generate(1, 200_000);
        let pure = pure_parse_time(doc.as_bytes(), 3);
        let m = measure(
            &xsq_core::XsqNc,
            "/dblp/article/title/text()",
            doc.as_bytes(),
            pure,
            3,
        )
        .expect("supported");
        assert!(
            m.relative_throughput > 0.05,
            "rel {}",
            m.relative_throughput
        );
        assert!(m.results > 0);
    }

    #[test]
    fn unsupported_queries_yield_none() {
        let doc = b"<a><b>x</b></a>";
        let pure = pure_parse_time(doc, 1);
        let m = measure(&xsq_baselines::XmltkLike, "/a[b]/b/text()", doc, pure, 1);
        assert!(m.is_none());
        assert_eq!(fmt_rel(&m), "-");
    }
}
