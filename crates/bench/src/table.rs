//! Plain-text table rendering for the experiment harness.

/// A simple aligned table with a title and optional footnotes.
#[derive(Debug, Clone)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
    pub notes: Vec<String>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Render as CSV (headers + rows; notes become trailing comment
    /// lines prefixed with `#`).
    pub fn render_csv(&self) -> String {
        let esc = |c: &str| -> String {
            if c.contains([',', '"', '\n']) {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str("# ");
            out.push_str(n);
            out.push('\n');
        }
        out
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let line: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"=".repeat(line.min(100)));
        out.push('\n');
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(line.min(100)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str("note: ");
            out.push_str(n);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_csv_with_escaping() {
        let mut t = Table::new("T", &["name", "v"]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        t.note("n");
        let csv = t.render_csv();
        assert_eq!(csv, "name,v\n\"a,b\",\"say \"\"hi\"\"\"\n# n\n");
    }

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("T", &["name", "v"]);
        t.row(vec!["a".into(), "1.00".into()]);
        t.row(vec!["longer".into(), "2".into()]);
        t.note("a note");
        let s = t.render();
        assert!(s.contains("T\n"));
        assert!(s.contains("longer"));
        assert!(s.contains("note: a note"));
        // Columns aligned: both rows have the value column starting at
        // the same offset.
        let lines: Vec<&str> = s.lines().collect();
        let r1 = lines.iter().find(|l| l.starts_with("a ")).unwrap();
        let r2 = lines.iter().find(|l| l.starts_with("longer")).unwrap();
        assert_eq!(r1.find("1.00"), r2.find('2'));
    }
}
