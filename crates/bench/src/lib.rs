//! # xsq-bench — the experiment harness for §6 of the paper
//!
//! One function per table/figure of the evaluation section
//! ([`experiments`]), shared by the `experiments` binary (which prints
//! paper-style tables) and the Criterion benches (which measure the same
//! workloads under a statistics harness).
//!
//! Methodology notes (matching §6):
//!
//! * **Relative throughput** — every engine's throughput is normalized by
//!   the [`xsq_xml::PureParser`] on the same bytes (§6.2), so parser cost
//!   and machine speed divide out; "who is faster than whom, and by
//!   what factor" is the reproducible quantity.
//! * **Memory** — engine-internal accounting: buffered items/bytes for
//!   streaming engines, materialized-structure bytes for DOM/index
//!   engines. The shape (flat vs. linear-in-input) is the paper's claim.
//! * **Scale** — dataset sizes default to laptop scale (1 MB-ish) and are
//!   configurable; the paper's absolute sizes (up to 716 MB) do not
//!   change any of the comparisons' shapes.

pub mod datasets;
pub mod experiments;
pub mod table;
pub mod throughput;

pub use table::Table;
