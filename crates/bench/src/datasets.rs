//! Dataset construction for the experiments, with one shared scale knob.
//!
//! The paper's datasets range from 7.9 MB to 716 MB; every comparison's
//! *shape* is size-independent, so the harness defaults to ~1 MB per
//! dataset and scales via `Scale`.

use xsq_datagen::{dblp, nasa, psd, shake, toxgene, xmlgen};

/// Scale factor for all experiment datasets.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Base dataset size in bytes (default 1 MiB).
    pub bytes: usize,
    /// Generator seed.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            bytes: 1 << 20,
            seed: 2003,
        }
    }
}

impl Scale {
    pub fn with_bytes(bytes: usize) -> Self {
        Scale {
            bytes,
            ..Default::default()
        }
    }
}

/// The four Fig. 15 datasets at the given scale, preserving the paper's
/// *relative* sizes (SHAKE : NASA : DBLP : PSD ≈ 1 : 3.2 : 15 : 91,
/// capped at 8× base so a laptop run stays quick).
pub fn standard_sized(scale: Scale) -> Vec<(&'static str, String)> {
    let b = scale.bytes;
    vec![
        ("SHAKE", shake::generate(scale.seed, b)),
        ("NASA", nasa::generate(scale.seed, b * 2)),
        ("DBLP", dblp::generate(scale.seed, b * 4)),
        ("PSD", psd::generate(scale.seed, b * 8)),
    ]
}

/// One dataset by name at exactly the base size (for throughput runs
/// where equal sizes make the comparison cleaner).
pub fn equal_sized(name: &str, scale: Scale) -> String {
    xsq_datagen::standard_dataset(name, scale.seed, scale.bytes)
        .unwrap_or_else(|| panic!("unknown dataset {name}"))
}

/// DBLP excerpts for the Fig. 19 memory-scaling sweep: well-formed
/// prefixes of one document at `fractions` of the full size.
pub fn dblp_excerpts(scale: Scale, steps: usize) -> Vec<(usize, String)> {
    let full = scale.bytes * steps;
    (1..=steps)
        .map(|i| {
            let sz = scale.bytes * i;
            (sz, dblp::excerpt(scale.seed, full, sz))
        })
        .collect()
}

/// Recursive datasets for the Fig. 20 sweep (IBM-generator parameters
/// from the paper: nesting 15, repeats 20).
pub fn recursive_sweep(scale: Scale, steps: usize) -> Vec<(usize, String)> {
    (1..=steps)
        .map(|i| {
            let sz = scale.bytes * i;
            let doc = xmlgen::generate(
                xmlgen::XmlGenParams {
                    nested_levels: 15,
                    max_repeats: 20,
                    seed: scale.seed + i as u64,
                },
                sz,
            );
            (sz, doc)
        })
        .collect()
}

/// The Fig. 21 ordering dataset. The paper uses 10 000 `foo` repeats in
/// a 10 MB file; repeats scale down with the dataset so several `<a>`
/// groups still occur.
pub fn ordering(scale: Scale) -> String {
    let repeats = (scale.bytes / 160).clamp(50, 10_000);
    toxgene::ordering_dataset(scale.bytes, repeats)
}

/// The Fig. 22 result-size dataset.
pub fn colors(scale: Scale) -> String {
    toxgene::color_dataset(scale.seed, scale.bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Scale {
        Scale {
            bytes: 30_000,
            seed: 7,
        }
    }

    #[test]
    fn standard_sizes_preserve_order() {
        let ds = standard_sized(small());
        assert_eq!(ds.len(), 4);
        for w in ds.windows(2) {
            assert!(w[0].1.len() <= w[1].1.len(), "sizes must be nondecreasing");
        }
    }

    #[test]
    fn excerpts_grow() {
        let ex = dblp_excerpts(small(), 3);
        assert_eq!(ex.len(), 3);
        assert!(ex[0].1.len() < ex[2].1.len());
        for (_, doc) in &ex {
            assert!(xsq_xml::parse_to_events(doc.as_bytes()).is_ok());
        }
    }

    #[test]
    fn special_datasets_parse() {
        for doc in [ordering(small()), colors(small())] {
            assert!(xsq_xml::parse_to_events(doc.as_bytes()).is_ok());
        }
        let rs = recursive_sweep(small(), 2);
        assert_eq!(rs.len(), 2);
    }
}
