//! Dispatch ablation for the multi-query index (dependency-free).
//!
//! Measures N ∈ {8, 64, 512} standing queries over a low tag-selectivity
//! stream — each query watches its own element tag, so any one event can
//! interest at most a handful of queries. This is the workload where
//! per-event cost separates the two multi-query paths:
//!
//! - **loop**: `MultiRunner::feed_all` steps all N runners per event
//!   (touches = events × N);
//! - **index**: `QueryIndex` routes each event through the inverted
//!   dispatch index to interested runners only.
//!
//! A second section ablates the **sharded multi-document driver**
//! (`xsq_core::shard`): a fixed corpus fanned over worker pools of
//! 1/2/4/8 threads versus the sequential reference driver, gated on the
//! merged output hashing identically to the sequential run. Wall-clock
//! speedup is recorded alongside the machine's core count; the ≥2.5×
//! speedup assertion at 4 workers only fires on machines with ≥4 cores
//! (a 1-core container can prove equivalence, not parallelism).
//!
//! Writes machine-readable results to `BENCH_multi.json` at the repo
//! root (override with the first CLI argument) and prints a table.
//! Run with `cargo run --release -p xsq-bench --bin multi-bench`.

use std::fmt::Write as _;
use std::time::Instant;

use xsq_core::{
    run_sequential_with, run_sharded_with, CountingSink, DocOutput, QuerySet, QuerySink,
    ShardOptions, XsqEngine,
};
use xsq_xml::SaxEvent;

/// Result-counting shared sink for the index path.
#[derive(Default)]
struct CountingQuerySink {
    results: u64,
}

impl QuerySink for CountingQuerySink {
    fn result(&mut self, _id: xsq_core::QueryId, _value: &str) {
        self.results += 1;
    }
}

/// A feed of `records` elements cycling over `tags` distinct tag names:
/// `<feed><t17><f17>v</f17></t17><t18>…</feed>`. With N queries each
/// watching one tag, an inner event interests at most one query.
fn generate_feed(tags: usize, records: usize) -> String {
    let mut out = String::with_capacity(records * 32);
    out.push_str("<feed>");
    for r in 0..records {
        let k = r % tags;
        let _ = write!(out, "<t{k}><f{k}>v{r}</f{k}></t{k}>");
    }
    out.push_str("</feed>");
    out
}

struct Measurement {
    n: usize,
    events: u64,
    results: u64,
    loop_touches: u64,
    /// Index with prefix sharing (QuerySet plan: here one merged group).
    index_touches: u64,
    /// Index with one group per query — isolates the dispatch win from
    /// the prefix-sharing win.
    solo_touches: u64,
    loop_events_per_sec: f64,
    index_events_per_sec: f64,
    solo_events_per_sec: f64,
    groups: usize,
    /// Merged-HPDT size before/after dead-state pruning. The query set
    /// plants statically dead subscriptions (relational predicates
    /// against non-numeric constants), so the analyzer must shrink it.
    states_before: usize,
    states_after: usize,
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(r);
    }
    (best, last.unwrap())
}

fn measure(n: usize, events: &[SaxEvent], queries: &[String]) -> Measurement {
    let texts: Vec<&str> = queries.iter().map(String::as_str).collect();
    let set = QuerySet::compile(XsqEngine::full(), &texts).expect("queries compile");
    let reps = 3;

    // Analyzer ablation: merge the whole set into one HPDT and prune it.
    // (The engine prunes internally; this measures how much it removes.)
    let parsed: Vec<_> = texts
        .iter()
        .map(|q| xsq_xpath::parse_query(q).expect("queries parse"))
        .collect();
    let merged = xsq_core::build::build_merged_hpdt(&parsed).expect("set merges");
    let (_, prune_stats) = xsq_core::prune(&merged);

    // Loop path: every event steps every runner.
    let (loop_secs, loop_results) = best_of(reps, || {
        let mut runner = set.runner();
        let mut sinks: Vec<CountingSink> = (0..n).map(|_| CountingSink::new()).collect();
        for ev in events {
            runner.feed_all(ev, &mut sinks);
        }
        runner.finish_all(&mut sinks);
        sinks.iter().map(|s| s.results).sum::<u64>()
    });

    // Index path: dispatch-routed.
    let (index_secs, (index_results, index_touches)) = best_of(reps, || {
        let mut index = set.index();
        let mut sink = CountingQuerySink::default();
        for ev in events {
            index.feed(ev, &mut sink);
        }
        index.finish(&mut sink);
        (sink.results, index.touches())
    });

    // Index path without prefix sharing: every query its own group, so
    // any reduction in touches is the dispatch index alone.
    let (solo_secs, (solo_results, solo_touches)) = best_of(reps, || {
        let mut index = xsq_core::QueryIndex::new(XsqEngine::full());
        for q in &texts {
            index.subscribe(q).expect("query compiles");
        }
        let mut sink = CountingQuerySink::default();
        for ev in events {
            index.feed(ev, &mut sink);
        }
        index.finish(&mut sink);
        (sink.results, index.touches())
    });

    assert_eq!(
        loop_results, index_results,
        "paths disagree on result count at N={n}"
    );
    assert_eq!(
        loop_results, solo_results,
        "solo index disagrees on result count at N={n}"
    );

    let ev = events.len() as u64;
    Measurement {
        n,
        events: ev,
        results: loop_results,
        loop_touches: ev * n as u64,
        index_touches,
        solo_touches,
        loop_events_per_sec: ev as f64 / loop_secs,
        index_events_per_sec: ev as f64 / index_secs,
        solo_events_per_sec: ev as f64 / solo_secs,
        groups: set.group_count(),
        states_before: prune_stats.states_before,
        states_after: prune_stats.states_after,
    }
}

/// FNV-1a, folded over the canonical serialization of the merged output
/// stream. Any reordering, dropped result, or changed value flips it.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

fn hash_doc_output(hash: &mut u64, di: usize, out: &DocOutput) {
    let mut line = String::new();
    let _ = writeln!(line, "doc {di} ev {}", out.events);
    for (id, value) in &out.results {
        let _ = writeln!(line, "r {} {value}", id.0);
    }
    for (id, value) in &out.updates {
        let _ = writeln!(line, "u {} {value}", id.0);
    }
    fnv1a(hash, line.as_bytes());
}

struct ShardMeasurement {
    workers: usize,
    secs: f64,
    docs_per_sec: f64,
    speedup: f64,
    hash: u64,
}

/// The sharded-driver ablation: corpus of recursive documents, paper-
/// vocabulary standing queries, pools of 1/2/4/8 workers vs sequential.
fn shard_ablation() -> (Vec<ShardMeasurement>, usize, usize, usize) {
    const DOCS: usize = 24;
    const DOC_BYTES: usize = 48 * 1024;
    let corpus: Vec<Vec<u8>> = (0..DOCS)
        .map(|i| {
            let params = xsq_datagen::xmlgen::XmlGenParams {
                nested_levels: 4 + (i as u32 % 4),
                max_repeats: 6 + (i as u32 % 5),
                seed: i as u64,
            };
            xsq_datagen::xmlgen::generate(params, DOC_BYTES).into_bytes()
        })
        .collect();
    let corpus_bytes: usize = corpus.iter().map(Vec::len).sum();

    let queries = [
        "//pub[year]//book[@id]/title/text()",
        "//pub/book/title/text()",
        "//book/@id",
        "//book/price/text()",
        "//price/sum()",
        "//book/count()",
    ];
    let set = QuerySet::compile(XsqEngine::full(), &queries).expect("queries compile");
    let reps = 3;

    let (seq_secs, seq_hash) = best_of(reps, || {
        let mut hash = FNV_OFFSET;
        run_sequential_with(&set, &corpus, |di, out| {
            hash_doc_output(&mut hash, di, &out)
        })
        .expect("sequential corpus run");
        hash
    });
    let mut rows = vec![ShardMeasurement {
        workers: 1,
        secs: seq_secs,
        docs_per_sec: DOCS as f64 / seq_secs,
        speedup: 1.0,
        hash: seq_hash,
    }];

    for workers in [2usize, 4, 8] {
        let opts = ShardOptions::with_workers(workers);
        let (secs, hash) = best_of(reps, || {
            let mut hash = FNV_OFFSET;
            run_sharded_with(&set, &corpus, &opts, |di, out| {
                hash_doc_output(&mut hash, di, &out)
            })
            .expect("sharded corpus run");
            hash
        });
        // The hard gate: the merged sharded output must hash identically
        // to the sequential reference, at every worker count, always.
        assert_eq!(
            hash, seq_hash,
            "sharded output diverged from sequential at {workers} workers"
        );
        rows.push(ShardMeasurement {
            workers,
            secs,
            docs_per_sec: DOCS as f64 / secs,
            speedup: seq_secs / secs,
            hash,
        });
    }
    (rows, DOCS, corpus_bytes, queries.len())
}

/// Minimum index/solo events-per-sec ratio at N=512. Measured ~3.4 on a
/// 1-core container after the arc-table + static-interest fix; 1.0 gives
/// scheduling-noise margin while still failing loudly on any return of
/// the cliff (which sat at ~0.07).
const DISPATCH_CLIFF_FLOOR: f64 = 1.0;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_multi.json").to_string()
    });

    // One stream shape for all N: 512 distinct tags, so even the N=8 set
    // watches a sparse slice of the stream.
    const TAGS: usize = 512;
    let doc = generate_feed(TAGS, 8192);
    let events = xsq_xml::parse_to_events(doc.as_bytes()).expect("feed parses");

    println!(
        "{:>5} {:>9} {:>13} {:>13} {:>13} {:>9} {:>12} {:>12} {:>12}",
        "N",
        "events",
        "loop touches",
        "solo touches",
        "idx touches",
        "solo win",
        "loop ev/s",
        "solo ev/s",
        "idx ev/s"
    );
    let mut rows = Vec::new();
    for n in [8usize, 64, 512] {
        // Every 8th subscription is a tombstone: its relational predicate
        // compares against a non-numeric constant, so it can never match.
        // Templated standing sets accumulate these (stale thresholds,
        // misconfigured feeds); the analyzer prunes their subtrees out of
        // the merged transducer. The first step stays /feed so grouping
        // is unchanged, and a dead query emits nothing on any path.
        let queries: Vec<String> = (0..n)
            .map(|k| {
                let t = k % TAGS;
                if k % 8 == 7 {
                    format!("/feed/t{t}[@sev>none]/f{t}/text()")
                } else {
                    format!("/feed/t{t}/f{t}/text()")
                }
            })
            .collect();
        let m = measure(n, &events, &queries);
        let solo_win = m.loop_touches as f64 / m.solo_touches as f64;
        println!(
            "{:>5} {:>9} {:>13} {:>13} {:>13} {:>8.1}x {:>12.0} {:>12.0} {:>12.0}",
            m.n,
            m.events,
            m.loop_touches,
            m.solo_touches,
            m.index_touches,
            solo_win,
            m.loop_events_per_sec,
            m.solo_events_per_sec,
            m.index_events_per_sec
        );
        println!(
            "      merged HPDT states: {} -> {} after pruning",
            m.states_before, m.states_after
        );
        if m.n == 512 {
            assert!(
                solo_win >= 5.0,
                "dispatch must beat the loop ≥5× on runner touches at N=512, got {solo_win:.1}x"
            );
            // Dispatch-cliff gate: at N=512 the merged-group index must
            // run at least as fast as the one-group-per-query baseline in
            // the same process (machine-independent ratio, not an absolute
            // events/s floor). Before the keyed arc tables and static-
            // interest registration this ratio was ~0.07 — dispatch won on
            // touches but the frontier state's O(N) arc scan and per-
            // record reindex diff ate the win.
            let cliff_ratio = m.index_events_per_sec / m.solo_events_per_sec;
            assert!(
                cliff_ratio >= DISPATCH_CLIFF_FLOOR,
                "index must not fall off the dispatch cliff at N=512: \
                 index/solo events-per-sec ratio {cliff_ratio:.2} < {DISPATCH_CLIFF_FLOOR}"
            );
            assert!(
                m.states_after < m.states_before,
                "pruning must shrink the tombstoned merged HPDT at N=512: {} -> {}",
                m.states_before,
                m.states_after
            );
        }
        rows.push(m);
    }

    let mut json = String::from("{\n  \"benchmark\": \"multi_query_dispatch\",\n");
    let _ = writeln!(
        json,
        "  \"stream\": {{\"tags\": {TAGS}, \"events\": {}}},",
        events.len()
    );
    json.push_str("  \"rows\": [\n");
    for (i, m) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"n\": {}, \"events\": {}, \"results\": {}, \"groups\": {}, \
             \"loop_touches\": {}, \"solo_touches\": {}, \"index_touches\": {}, \
             \"solo_touch_win\": {:.2}, \"shared_touch_win\": {:.2}, \
             \"loop_events_per_sec\": {:.0}, \"solo_events_per_sec\": {:.0}, \
             \"index_events_per_sec\": {:.0}, \"index_vs_solo_ratio\": {:.3}, \
             \"loop_touches_per_event\": {:.2}, \"solo_touches_per_event\": {:.2}, \
             \"index_touches_per_event\": {:.2}, \
             \"merged_states_before_prune\": {}, \"merged_states_after_prune\": {}}}",
            m.n,
            m.events,
            m.results,
            m.groups,
            m.loop_touches,
            m.solo_touches,
            m.index_touches,
            m.loop_touches as f64 / m.solo_touches as f64,
            m.loop_touches as f64 / m.index_touches as f64,
            m.loop_events_per_sec,
            m.solo_events_per_sec,
            m.index_events_per_sec,
            m.index_events_per_sec / m.solo_events_per_sec,
            m.loop_touches as f64 / m.events as f64,
            m.solo_touches as f64 / m.events as f64,
            m.index_touches as f64 / m.events as f64,
            m.states_before,
            m.states_after,
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"dispatch_cliff_gate\": {{\"min_index_vs_solo_ratio\": \
         {DISPATCH_CLIFF_FLOOR:.1}, \"at_n\": 512, \"enforced\": true}},"
    );

    // ---- Sharded multi-document driver ablation ----
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (shard_rows, docs, corpus_bytes, shard_queries) = shard_ablation();
    println!("\nshard: {docs} docs, {corpus_bytes} bytes, {shard_queries} queries, {cores} cores");
    println!(
        "{:>8} {:>10} {:>10} {:>8} {:>18}",
        "workers", "secs", "docs/s", "speedup", "output hash"
    );
    for m in &shard_rows {
        println!(
            "{:>8} {:>10.4} {:>10.1} {:>7.2}x {:>18}",
            m.workers,
            m.secs,
            m.docs_per_sec,
            m.speedup,
            format!("{:016x}", m.hash)
        );
    }
    let at4 = shard_rows
        .iter()
        .find(|m| m.workers == 4)
        .expect("4-worker row");
    if cores >= 4 {
        assert!(
            at4.speedup >= 2.5,
            "sharded driver must be ≥2.5× sequential at 4 workers on a \
             {cores}-core machine, got {:.2}x",
            at4.speedup
        );
    } else {
        println!(
            "      (speedup gate skipped: {cores} core(s) < 4 — equivalence \
             gate still enforced)"
        );
    }

    let _ = writeln!(
        json,
        "  \"shard\": {{\n    \"docs\": {docs}, \"corpus_bytes\": {corpus_bytes}, \
         \"queries\": {shard_queries}, \"cores\": {cores},\n    \"rows\": ["
    );
    for (i, m) in shard_rows.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"workers\": {}, \"secs\": {:.6}, \"docs_per_sec\": {:.1}, \
             \"speedup\": {:.3}, \"output_hash\": \"{:016x}\", \
             \"matches_sequential\": true}}",
            m.workers, m.secs, m.docs_per_sec, m.speedup, m.hash
        );
        json.push_str(if i + 1 < shard_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    let _ = writeln!(
        json,
        "    ],\n    \"speedup_gate\": {{\"threshold\": 2.5, \"at_workers\": 4, \
         \"enforced\": {}}}\n  }}",
        cores >= 4
    );
    json.push_str("}\n");
    std::fs::write(&out_path, json).expect("write BENCH_multi.json");
    println!("\nwrote {out_path}");
}
