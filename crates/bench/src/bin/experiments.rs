//! The experiment harness binary: regenerates every table and figure of
//! the paper's §6 as plain-text tables.
//!
//! ```text
//! experiments [fig14 … fig22 | all] [--scale-kb N] [--repeats N] [--seed N]
//!             [--csv DIR]    additionally write one CSV per figure
//! ```
//!
//! Defaults: all figures, 1024 KB base dataset size, best-of-3 timing.

use std::process::ExitCode;

use xsq_bench::experiments::{self, Config};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figures: Vec<String> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut cfg = Config::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale-kb" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(kb) => cfg.scale.bytes = kb * 1024,
                    None => return usage("--scale-kb needs a number"),
                }
            }
            "--repeats" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(r) => cfg.repeats = r.max(1),
                    None => return usage("--repeats needs a number"),
                }
            }
            "--csv" => {
                i += 1;
                match args.get(i) {
                    Some(d) => csv_dir = Some(d.clone()),
                    None => return usage("--csv needs a directory"),
                }
            }
            "--seed" => {
                i += 1;
                match args.get(i).and_then(|v| v.parse::<u64>().ok()) {
                    Some(s) => cfg.scale.seed = s,
                    None => return usage("--seed needs a number"),
                }
            }
            "--help" | "-h" => return usage(""),
            a if a.starts_with("fig") || a == "all" || a == "xmark" => figures.push(a.to_string()),
            other => return usage(&format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if figures.is_empty() || figures.iter().any(|f| f == "all") {
        figures = (14..=22).map(|n| format!("fig{n}")).collect();
    }
    println!(
        "XSQ experiment harness — base scale {} KB, best-of-{} timing, seed {}\n",
        cfg.scale.bytes / 1024,
        cfg.repeats,
        cfg.scale.seed
    );
    for f in &figures {
        match experiments::by_name(f, cfg) {
            Some(table) => {
                println!("{}", table.render());
                if let Some(dir) = &csv_dir {
                    if let Err(e) = std::fs::create_dir_all(dir) {
                        eprintln!("error: creating {dir}: {e}");
                        return ExitCode::FAILURE;
                    }
                    let path = format!("{dir}/{f}.csv");
                    if let Err(e) = std::fs::write(&path, table.render_csv()) {
                        eprintln!("error: writing {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => return usage(&format!("unknown experiment '{f}' (fig14..fig22)")),
        }
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: experiments [fig14 .. fig22 | xmark | all] [--scale-kb N] [--repeats N] [--seed N] [--csv DIR]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
