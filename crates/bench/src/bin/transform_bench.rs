//! Transformation-engine bench: one-pass streaming rewriter vs the
//! two-pass DOM reference.
//!
//! For each dataset × rule-set pair, both engines transform the same
//! document. Correctness is **gated**: the streaming output must be
//! byte-identical to the DOM oracle (and to itself under 4 KB chunked
//! pushes) or the bench aborts. Throughput is **recorded, not
//! asserted** — the one-pass engine is expected to win on wall clock
//! and, structurally, on memory (it buffers only undecided regions;
//! the DOM holds the whole tree), but the JSON reports whatever the
//! machine measured.
//!
//! Writes `BENCH_transform.json` at the repo root (override with the
//! first CLI argument; second argument scales document size in bytes).
//! Run with `cargo run --release -p xsq-bench --bin transform-bench`.

use std::fmt::Write as _;
use std::time::Instant;

use xsq_baselines::dom::transform::transform_bytes;
use xsq_datagen::{dblp, shake, xmark};
use xsq_transform::Transformer;
use xsq_xpath::RuleSet;

struct Workload {
    name: &'static str,
    rules: &'static str,
    doc: String,
}

struct Row {
    name: &'static str,
    bytes: usize,
    out_bytes: usize,
    elements: u64,
    matched: u64,
    deferred: u64,
    peak_buffered: usize,
    dom_estimated_bytes: u64,
    stream_mb_per_sec: f64,
    dom_mb_per_sec: f64,
    speedup: f64,
}

fn measure(w: &Workload) -> Row {
    const REPS: usize = 7;
    let t = Transformer::compile(w.rules).expect("bench rules compile");
    let rules = RuleSet::parse(w.rules).expect("bench rules parse");
    let doc = w.doc.as_bytes();

    // Correctness gate: stream == DOM oracle, and chunked == whole.
    let stream = t.transform(doc).expect("stream transform");
    let dom = transform_bytes(doc, &rules).expect("dom transform");
    assert_eq!(
        stream.xml, dom,
        "stream/DOM divergence on {} — bench aborted",
        w.name
    );
    let mut session = t.session();
    let mut chunked = String::new();
    for piece in doc.chunks(4096) {
        chunked.push_str(&session.push(piece).expect("push"));
    }
    let tail = session.finish().expect("finish");
    chunked.push_str(&tail.xml);
    assert_eq!(chunked, stream.xml, "chunked divergence on {}", w.name);
    let dom_estimated_bytes = xsq_baselines::dom::Document::parse(doc)
        .expect("document parses")
        .estimated_bytes;

    // Interleave timed reps; keep each engine's least-disturbed run.
    let mut stream_secs = f64::INFINITY;
    let mut dom_secs = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let r = t.transform(doc).expect("stream transform");
        stream_secs = stream_secs.min(t0.elapsed().as_secs_f64());
        assert_eq!(r.xml.len(), stream.xml.len());
        let t0 = Instant::now();
        let r = transform_bytes(doc, &rules).expect("dom transform");
        dom_secs = dom_secs.min(t0.elapsed().as_secs_f64());
        assert_eq!(r.len(), dom.len());
    }

    let mb = doc.len() as f64 / (1024.0 * 1024.0);
    Row {
        name: w.name,
        bytes: doc.len(),
        out_bytes: stream.xml.len(),
        elements: stream.stats.elements,
        matched: stream.stats.matched,
        deferred: stream.stats.deferred,
        peak_buffered: stream.stats.peak_buffered,
        dom_estimated_bytes,
        stream_mb_per_sec: mb / stream_secs,
        dom_mb_per_sec: mb / dom_secs,
        speedup: dom_secs / stream_secs,
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_transform.json").to_string()
    });
    let size: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("size in bytes"))
        .unwrap_or(1 << 22);
    const SEED: u64 = 2003;

    let workloads = [
        // Immediate verdicts only: the streaming engine never buffers.
        Workload {
            name: "dblp-immediate",
            rules: "//author => rename(who)\n//url => drop",
            doc: dblp::generate(SEED, size),
        },
        // Deferred child predicates: verdicts wait for evidence.
        Workload {
            name: "dblp-deferred",
            rules: "//inproceedings[author] => wrap(talk)\n\
                    //article[year=2002] => rename(recent)",
            doc: dblp::generate(SEED, size),
        },
        // Recursive structure + closure patterns.
        Workload {
            name: "xmark-recursive",
            rules: "//parlist//text => rename(t)\n//bidder => drop",
            doc: xmark::generate(SEED, size),
        },
        // Text-heavy with function predicates.
        Workload {
            name: "shake-functions",
            rules: "//LINE[contains(text(),the)] => wrap(hit)",
            doc: shake::generate(SEED, size),
        },
    ];

    println!(
        "{:>16} {:>9} {:>9} {:>8} {:>9} {:>11} {:>10} {:>10} {:>8}",
        "workload",
        "bytes",
        "elements",
        "matched",
        "deferred",
        "peak_buf",
        "strm MB/s",
        "dom MB/s",
        "speedup"
    );
    let mut rows = Vec::new();
    for w in &workloads {
        let r = measure(w);
        println!(
            "{:>16} {:>9} {:>9} {:>8} {:>9} {:>11} {:>10.1} {:>10.1} {:>7.2}x",
            r.name,
            r.bytes,
            r.elements,
            r.matched,
            r.deferred,
            r.peak_buffered,
            r.stream_mb_per_sec,
            r.dom_mb_per_sec,
            r.speedup
        );
        rows.push(r);
    }

    let mut json = String::from("{\n  \"benchmark\": \"transform_stream_vs_dom\",\n");
    let _ = writeln!(json, "  \"doc_bytes\": {size},");
    let _ = writeln!(
        json,
        "  \"kernel\": \"{}\",\n  \"cores\": {},\n  \"cpu_features\": \"{}\",",
        xsq_xml::scan::active_kernel(),
        std::thread::available_parallelism().map_or(1, |n| n.get()),
        xsq_xml::scan::cpu_features()
    );
    json.push_str("  \"identity\": \"stream output byte-identical to DOM reference (gated)\",\n");
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"workload\": \"{}\", \"bytes\": {}, \"out_bytes\": {}, \
             \"elements\": {}, \"matched\": {}, \"deferred\": {}, \
             \"peak_buffered\": {}, \"dom_estimated_bytes\": {}, \
             \"stream_mb_per_sec\": {:.2}, \"dom_mb_per_sec\": {:.2}, \
             \"speedup\": {:.2}}}",
            r.name,
            r.bytes,
            r.out_bytes,
            r.elements,
            r.matched,
            r.deferred,
            r.peak_buffered,
            r.dom_estimated_bytes,
            r.stream_mb_per_sec,
            r.dom_mb_per_sec,
            r.speedup
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_transform.json");
    println!("\nwrote {out_path}");
}
