//! Server-path ablation for the streaming query server (dependency-free).
//!
//! Measures what the wire costs: the same corpus and standing query set
//! evaluated (a) **in-process** through the sequential reference driver
//! and (b) **over loopback TCP** through `xsq-server`, with 1, 8, and
//! 64 concurrent client sessions (one accept-worker per session). Each
//! session replays the full corpus, so the server rows scale offered
//! load with session count while the in-process row is the zero-copy
//! lower bound.
//!
//! Correctness is gated, throughput is not: the single-session client
//! transcript must be byte-identical to the reference driver's output,
//! but no speedup assertion fires — on a 1-core container the server
//! rows measure framing + syscall overhead, not parallelism. The
//! machine's core count is recorded in the output for that reason.
//!
//! Writes machine-readable results to `BENCH_serve.json` at the repo
//! root (override with the first CLI argument) and prints a table.
//! Run with `cargo run --release -p xsq-bench --bin serve-bench`.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use xsq_core::{run_sequential_with, QuerySet, XsqEngine};
use xsq_server::{reference_output, run_corpus, serve, ConnectOptions, ServeOptions};

const DOCS: usize = 12;
const DOC_BYTES: usize = 24 * 1024;
const SESSION_COUNTS: &[usize] = &[1, 8, 64];

/// The paper-vocabulary standing set the shard ablation uses: structural
/// paths, predicates, closures, attributes, aggregations.
const QUERIES: &[&str] = &[
    "//pub[year]//book[@id]/title/text()",
    "//pub/book/title/text()",
    "//book/@id",
    "//book/price/text()",
    "//price/sum()",
    "//book/count()",
];

fn corpus() -> Vec<Vec<u8>> {
    (0..DOCS)
        .map(|i| {
            let params = xsq_datagen::xmlgen::XmlGenParams {
                nested_levels: 4 + (i as u32 % 4),
                max_repeats: 6 + (i as u32 % 5),
                seed: 100 + i as u64,
            };
            xsq_datagen::xmlgen::generate(params, DOC_BYTES).into_bytes()
        })
        .collect()
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(r);
    }
    (best, last.unwrap())
}

struct Row {
    sessions: usize,
    secs: f64,
    /// Corpus replays completed (== sessions; each replays everything).
    replays: usize,
    events_per_sec: f64,
    results_per_sec: f64,
    relative: f64,
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string()
    });
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let docs = corpus();
    let corpus_bytes: usize = docs.iter().map(Vec::len).sum();
    let reps = 3;

    // ---- In-process baseline: the zero-copy sequential driver ----
    let set = QuerySet::compile(XsqEngine::full(), QUERIES).expect("queries compile");
    let (seq_secs, (seq_events, seq_results)) = best_of(reps, || {
        let mut events = 0u64;
        let mut results = 0u64;
        run_sequential_with(&set, &docs, |_, out| {
            events += out.events;
            results += (out.results.len() + out.updates.len()) as u64;
        })
        .expect("sequential corpus run");
        (events, results)
    });
    let in_events_per_sec = seq_events as f64 / seq_secs;
    let in_results_per_sec = seq_results as f64 / seq_secs;

    println!(
        "corpus: {DOCS} docs, {corpus_bytes} bytes, {} queries, {cores} cores",
        QUERIES.len()
    );
    println!(
        "in-process: {seq_events} events, {seq_results} results in {seq_secs:.4}s \
         ({in_events_per_sec:.0} ev/s, {in_results_per_sec:.0} res/s)"
    );

    // ---- Correctness gate: 1-session transcript == reference driver ----
    let expected =
        reference_output(XsqEngine::full(), QUERIES, &docs, true).expect("reference run");
    {
        let mut opts = ServeOptions::new("127.0.0.1:0");
        opts.workers = 1;
        serve_and_check(opts, &docs, &expected);
    }
    println!("gate: 1-session loopback transcript matches the sequential driver");

    // ---- Server rows: S sessions, each replaying the full corpus ----
    println!(
        "\n{:>9} {:>10} {:>9} {:>13} {:>13} {:>9}",
        "sessions", "secs", "replays", "events/s", "results/s", "vs inproc"
    );
    let mut rows = Vec::new();
    for &sessions in SESSION_COUNTS {
        let mut opts = ServeOptions::new("127.0.0.1:0");
        opts.workers = sessions;
        opts.idle_timeout = Duration::from_secs(60);
        let server = serve(opts).expect("server binds");
        let addr = server.addr().to_string();
        let docs_ref = &docs;
        let (secs, ()) = best_of(reps, || {
            std::thread::scope(|scope| {
                for _ in 0..sessions {
                    let addr = addr.clone();
                    scope.spawn(move || {
                        let copts = ConnectOptions {
                            chunk: 64 * 1024,
                            running: true,
                            want_stats: false,
                        };
                        let mut out = Vec::new();
                        run_corpus(&addr, QUERIES, docs_ref, &copts, &mut out)
                            .expect("session replay");
                    });
                }
            });
        });
        server.shutdown();
        let total_events = seq_events * sessions as u64;
        let total_results = seq_results * sessions as u64;
        let events_per_sec = total_events as f64 / secs;
        let results_per_sec = total_results as f64 / secs;
        let relative = events_per_sec / in_events_per_sec;
        println!(
            "{:>9} {:>10.4} {:>9} {:>13.0} {:>13.0} {:>8.2}x",
            sessions, secs, sessions, events_per_sec, results_per_sec, relative
        );
        rows.push(Row {
            sessions,
            secs,
            replays: sessions,
            events_per_sec,
            results_per_sec,
            relative,
        });
    }

    let mut json = String::from("{\n  \"benchmark\": \"serve_loopback\",\n");
    let _ = writeln!(
        json,
        "  \"kernel\": \"{}\",\n  \"cores\": {cores},\n  \"cpu_features\": \"{}\",",
        xsq_xml::scan::active_kernel(),
        xsq_xml::scan::cpu_features()
    );
    let _ = writeln!(
        json,
        "  \"corpus\": {{\"docs\": {DOCS}, \"bytes\": {corpus_bytes}, \
         \"queries\": {}, \"cores\": {cores}}},",
        QUERIES.len()
    );
    let _ = writeln!(
        json,
        "  \"in_process\": {{\"secs\": {seq_secs:.6}, \"events\": {seq_events}, \
         \"results\": {seq_results}, \"events_per_sec\": {in_events_per_sec:.0}, \
         \"results_per_sec\": {in_results_per_sec:.0}}},"
    );
    json.push_str("  \"sessions\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"sessions\": {}, \"secs\": {:.6}, \"corpus_replays\": {}, \
             \"events_per_sec\": {:.0}, \"results_per_sec\": {:.0}, \
             \"relative_to_in_process\": {:.3}}}",
            r.sessions, r.secs, r.replays, r.events_per_sec, r.results_per_sec, r.relative
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str(
        "  \"gates\": {\"single_session_byte_identical\": true, \
         \"speedup_asserted\": false}\n}\n",
    );
    std::fs::write(&out_path, json).expect("write BENCH_serve.json");
    println!("\nwrote {out_path}");
}

fn serve_and_check(opts: ServeOptions, docs: &[Vec<u8>], expected: &str) {
    let server = serve(opts).expect("server binds");
    let copts = ConnectOptions {
        chunk: 64 * 1024,
        running: true,
        want_stats: false,
    };
    let mut out = Vec::new();
    run_corpus(&server.addr().to_string(), QUERIES, docs, &copts, &mut out).expect("gate replay");
    assert_eq!(
        String::from_utf8(out).expect("client output is UTF-8"),
        expected,
        "loopback transcript diverged from the sequential driver"
    );
    server.shutdown();
}
