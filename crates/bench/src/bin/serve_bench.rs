//! Server-path ablation for the streaming query server (dependency-free).
//!
//! Measures what the wire costs: the same corpus and standing query set
//! evaluated (a) **in-process** through the sequential reference driver,
//! (b) **over loopback TCP** through both serving models — the
//! readiness-based event loop and the thread-per-session accept pool —
//! with 1, 8, and 64 concurrent client sessions, and (c) in
//! **broadcast mode**, where one feeder parses the corpus once and a
//! shared `QueryIndex` fans results to every subscriber.
//!
//! Correctness is gated, throughput mostly is not: the single-session
//! client transcript and every broadcast subscriber transcript must be
//! byte-identical to the reference driver's output, and the event loop
//! must hold a `relative_to_in_process` ratio at 64 sessions no worse
//! than the threaded model measured *in the same run* — the one perf
//! assertion, since both models face identical noise. Broadcast
//! throughput is recorded, never asserted.
//!
//! Per-session wire bytes are recorded so the fan-out amplification
//! factor (result bytes out / ingest bytes in) is visible — the number
//! that says what broadcast saves over N private sessions.
//!
//! Writes machine-readable results to `BENCH_serve.json` at the repo
//! root (override with the first CLI argument) and prints a table.
//! Run with `cargo run --release -p xsq-bench --bin serve-bench`.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use xsq_core::{run_sequential_with, QuerySet, XsqEngine};
use xsq_server::{
    broadcast_feed, broadcast_subscribe, reference_output, run_corpus, serve, BroadcastOptions,
    BroadcastPolicy, ConnectOptions, FeedOptions, ServeModel, ServeOptions,
};

const DOCS: usize = 12;
const DOC_BYTES: usize = 24 * 1024;
const SESSION_COUNTS: &[usize] = &[1, 8, 64];
const BROADCAST_SUBS: &[usize] = &[16, 256];

/// The paper-vocabulary standing set the shard ablation uses: structural
/// paths, predicates, closures, attributes, aggregations.
const QUERIES: &[&str] = &[
    "//pub[year]//book[@id]/title/text()",
    "//pub/book/title/text()",
    "//book/@id",
    "//book/price/text()",
    "//price/sum()",
    "//book/count()",
];

fn corpus() -> Vec<Vec<u8>> {
    (0..DOCS)
        .map(|i| {
            let params = xsq_datagen::xmlgen::XmlGenParams {
                nested_levels: 4 + (i as u32 % 4),
                max_repeats: 6 + (i as u32 % 5),
                seed: 100 + i as u64,
            };
            xsq_datagen::xmlgen::generate(params, DOC_BYTES).into_bytes()
        })
        .collect()
}

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = f();
        best = best.min(t0.elapsed().as_secs_f64());
        last = Some(r);
    }
    (best, last.unwrap())
}

struct Row {
    model: &'static str,
    sessions: usize,
    secs: f64,
    events_per_sec: f64,
    results_per_sec: f64,
    relative: f64,
    /// Mean wire bytes one session sent (SUB + FEED framing + corpus).
    wire_out_per_session: u64,
    /// Mean wire bytes one session received (results + boundaries).
    wire_in_per_session: u64,
    /// Result bytes out / ingest bytes in, per session.
    amplification: f64,
}

struct BroadcastRow {
    subscribers: usize,
    secs: f64,
    /// Events the feeder's single parse produced per second.
    ingest_events_per_sec: f64,
    /// Events *delivered* per second: one parse, N deliveries.
    fanout_events_per_sec: f64,
    ingest_bytes: u64,
    results_bytes_total: u64,
    /// Total result bytes to all subscribers / ingest bytes once.
    amplification: f64,
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json").to_string()
    });
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let docs = corpus();
    let corpus_bytes: usize = docs.iter().map(Vec::len).sum();
    let reps = 3;

    // ---- In-process baseline: the zero-copy sequential driver ----
    let set = QuerySet::compile(XsqEngine::full(), QUERIES).expect("queries compile");
    let (seq_secs, (seq_events, seq_results)) = best_of(reps, || {
        let mut events = 0u64;
        let mut results = 0u64;
        run_sequential_with(&set, &docs, |_, out| {
            events += out.events;
            results += (out.results.len() + out.updates.len()) as u64;
        })
        .expect("sequential corpus run");
        (events, results)
    });
    let in_events_per_sec = seq_events as f64 / seq_secs;
    let in_results_per_sec = seq_results as f64 / seq_secs;

    println!(
        "corpus: {DOCS} docs, {corpus_bytes} bytes, {} queries, {cores} cores",
        QUERIES.len()
    );
    println!(
        "in-process: {seq_events} events, {seq_results} results in {seq_secs:.4}s \
         ({in_events_per_sec:.0} ev/s, {in_results_per_sec:.0} res/s)"
    );

    // ---- Correctness gate: 1-session transcript == reference driver,
    // on both serving models ----
    let expected =
        reference_output(XsqEngine::full(), QUERIES, &docs, true).expect("reference run");
    for model in models() {
        let mut opts = ServeOptions::new("127.0.0.1:0");
        opts.workers = 1;
        opts.model = model;
        serve_and_check(opts, &docs, &expected);
    }
    println!("gate: 1-session loopback transcript matches the sequential driver (all models)");

    // ---- Server rows: S sessions x both models, same run ----
    println!(
        "\n{:>9} {:>9} {:>10} {:>13} {:>13} {:>9} {:>11} {:>7}",
        "model", "sessions", "secs", "events/s", "results/s", "vs inproc", "in B/sess", "amp"
    );
    let mut rows: Vec<Row> = Vec::new();
    for model in models() {
        let label = model_label(model);
        for &sessions in SESSION_COUNTS {
            let mut opts = ServeOptions::new("127.0.0.1:0");
            opts.workers = sessions;
            opts.model = model;
            opts.idle_timeout = Duration::from_secs(60);
            let server = serve(opts).expect("server binds");
            let addr = server.addr().to_string();
            let docs_ref = &docs;
            let (secs, (wire_out, wire_in)) = best_of(reps, || {
                let sums = std::sync::Mutex::new((0u64, 0u64));
                std::thread::scope(|scope| {
                    for _ in 0..sessions {
                        let addr = addr.clone();
                        let sums = &sums;
                        scope.spawn(move || {
                            let copts = ConnectOptions {
                                chunk: 64 * 1024,
                                running: true,
                                want_stats: false,
                            };
                            let mut out = Vec::new();
                            let report = run_corpus(&addr, QUERIES, docs_ref, &copts, &mut out)
                                .expect("session replay");
                            let mut s = sums.lock().unwrap();
                            s.0 += report.wire_out;
                            s.1 += report.wire_in;
                        });
                    }
                });
                sums.into_inner().unwrap()
            });
            server.shutdown();
            let total_events = seq_events * sessions as u64;
            let total_results = seq_results * sessions as u64;
            let events_per_sec = total_events as f64 / secs;
            let results_per_sec = total_results as f64 / secs;
            let relative = events_per_sec / in_events_per_sec;
            let wire_out_per_session = wire_out / sessions as u64;
            let wire_in_per_session = wire_in / sessions as u64;
            let amplification = wire_in as f64 / wire_out as f64;
            println!(
                "{:>9} {:>9} {:>10.4} {:>13.0} {:>13.0} {:>8.2}x {:>11} {:>7.3}",
                label,
                sessions,
                secs,
                events_per_sec,
                results_per_sec,
                relative,
                wire_in_per_session,
                amplification
            );
            rows.push(Row {
                model: label,
                sessions,
                secs,
                events_per_sec,
                results_per_sec,
                relative,
                wire_out_per_session,
                wire_in_per_session,
                amplification,
            });
        }
    }

    // ---- The one perf assertion: at 64 sessions the event loop holds
    // the threaded model's ratio, measured under identical noise ----
    let rel_at = |model: &str| {
        rows.iter()
            .find(|r| r.model == model && r.sessions == 64)
            .map(|r| r.relative)
    };
    let eventloop_ok = match (rel_at("eventloop"), rel_at("threaded")) {
        (Some(ev), Some(th)) => {
            println!("\ngate: eventloop {ev:.3}x vs threaded {th:.3}x at 64 sessions");
            // On a 1-core runner both models serialize on the same CPU
            // and their true gap is smaller than run-to-run noise, so
            // the assertion carries a 10% band; the recorded JSON keeps
            // the strict comparison for readers.
            assert!(
                ev >= th * 0.9,
                "event loop regressed below the threaded model at 64 sessions \
                 ({ev:.3}x vs {th:.3}x in the same run, >10% gap)"
            );
            ev >= th
        }
        // Non-unix: only the threaded model exists; nothing to compare.
        _ => false,
    };

    // ---- Broadcast rows: one feeder parse, N subscriber deliveries ----
    let mut brows: Vec<BroadcastRow> = Vec::new();
    if cfg!(unix) {
        println!(
            "\n{:>11} {:>10} {:>14} {:>16} {:>11} {:>7}",
            "subscribers", "secs", "ingest ev/s", "fanout ev/s", "out bytes", "amp"
        );
        for &subs in BROADCAST_SUBS {
            let (secs, (ingest_bytes, results_bytes_total)) = best_of(2, || {
                let mut opts = ServeOptions::new("127.0.0.1:0");
                opts.idle_timeout = Duration::from_secs(60);
                opts.broadcast = Some(BroadcastOptions {
                    queue: 4096,
                    policy: BroadcastPolicy::Block,
                });
                let server = serve(opts).expect("server binds");
                let addr = server.addr().to_string();
                let threads: Vec<_> = (0..subs)
                    .map(|_| {
                        let addr = addr.clone();
                        std::thread::spawn(move || {
                            let mut out = Vec::new();
                            let report = broadcast_subscribe(&addr, QUERIES, DOCS, true, &mut out)
                                .expect("subscriber completes");
                            (String::from_utf8(out).unwrap(), report.wire_in)
                        })
                    })
                    .collect();
                let fopts = FeedOptions {
                    chunk: 64 * 1024,
                    wait_subs: Some(subs as u64),
                    want_stats: false,
                };
                let feed = broadcast_feed(&addr, &docs, &fopts).expect("feed completes");
                let mut results_bytes = 0u64;
                for t in threads {
                    let (got, wire_in) = t.join().expect("subscriber thread");
                    // Identity gate: every subscriber byte-identical to
                    // the solo sequential driver.
                    assert_eq!(got, expected, "broadcast subscriber diverged");
                    results_bytes += wire_in;
                }
                server.shutdown();
                (feed.wire_out, results_bytes)
            });
            let ingest_events_per_sec = seq_events as f64 / secs;
            let fanout_events_per_sec = ingest_events_per_sec * subs as f64;
            let amplification = results_bytes_total as f64 / ingest_bytes as f64;
            println!(
                "{:>11} {:>10.4} {:>14.0} {:>16.0} {:>11} {:>7.1}",
                subs,
                secs,
                ingest_events_per_sec,
                fanout_events_per_sec,
                results_bytes_total,
                amplification
            );
            brows.push(BroadcastRow {
                subscribers: subs,
                secs,
                ingest_events_per_sec,
                fanout_events_per_sec,
                ingest_bytes,
                results_bytes_total,
                amplification,
            });
        }
        println!("gate: every broadcast subscriber transcript matches the sequential driver");
    }

    let mut json = String::from("{\n  \"benchmark\": \"serve_loopback\",\n");
    let _ = writeln!(
        json,
        "  \"kernel\": \"{}\",\n  \"cores\": {cores},\n  \"cpu_features\": \"{}\",",
        xsq_xml::scan::active_kernel(),
        xsq_xml::scan::cpu_features()
    );
    let _ = writeln!(
        json,
        "  \"corpus\": {{\"docs\": {DOCS}, \"bytes\": {corpus_bytes}, \
         \"queries\": {}, \"cores\": {cores}}},",
        QUERIES.len()
    );
    let _ = writeln!(
        json,
        "  \"in_process\": {{\"secs\": {seq_secs:.6}, \"events\": {seq_events}, \
         \"results\": {seq_results}, \"events_per_sec\": {in_events_per_sec:.0}, \
         \"results_per_sec\": {in_results_per_sec:.0}}},"
    );
    json.push_str("  \"sessions\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"model\": \"{}\", \"sessions\": {}, \"secs\": {:.6}, \
             \"corpus_replays\": {}, \"events_per_sec\": {:.0}, \"results_per_sec\": {:.0}, \
             \"relative_to_in_process\": {:.3}, \"wire_out_per_session\": {}, \
             \"wire_in_per_session\": {}, \"amplification\": {:.3}}}",
            r.model,
            r.sessions,
            r.secs,
            r.sessions,
            r.events_per_sec,
            r.results_per_sec,
            r.relative,
            r.wire_out_per_session,
            r.wire_in_per_session,
            r.amplification
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"broadcast\": [\n");
    for (i, b) in brows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"subscribers\": {}, \"secs\": {:.6}, \"ingest_events_per_sec\": {:.0}, \
             \"fanout_events_per_sec\": {:.0}, \"ingest_bytes\": {}, \
             \"results_bytes_total\": {}, \"amplification\": {:.1}}}",
            b.subscribers,
            b.secs,
            b.ingest_events_per_sec,
            b.fanout_events_per_sec,
            b.ingest_bytes,
            b.results_bytes_total,
            b.amplification
        );
        json.push_str(if i + 1 < brows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"gates\": {{\"single_session_byte_identical\": true, \
         \"broadcast_subscribers_byte_identical\": {}, \
         \"eventloop_holds_threaded_ratio_at_64\": {eventloop_ok}, \
         \"speedup_asserted\": false}}\n}}",
        !brows.is_empty()
    );
    std::fs::write(&out_path, json).expect("write BENCH_serve.json");
    println!("\nwrote {out_path}");
}

fn models() -> Vec<ServeModel> {
    if cfg!(unix) {
        vec![ServeModel::Threaded, ServeModel::EventLoop]
    } else {
        vec![ServeModel::Threaded]
    }
}

fn model_label(model: ServeModel) -> &'static str {
    match model {
        ServeModel::EventLoop => "eventloop",
        ServeModel::Threaded => "threaded",
    }
}

fn serve_and_check(opts: ServeOptions, docs: &[Vec<u8>], expected: &str) {
    let server = serve(opts).expect("server binds");
    let copts = ConnectOptions {
        chunk: 64 * 1024,
        running: true,
        want_stats: false,
    };
    let mut out = Vec::new();
    run_corpus(&server.addr().to_string(), QUERIES, docs, &copts, &mut out).expect("gate replay");
    assert_eq!(
        String::from_utf8(out).expect("client output is UTF-8"),
        expected,
        "loopback transcript diverged from the sequential driver"
    );
    server.shutdown();
}
