//! Event-path microbench: pre-PR string path vs zero-copy symbol path.
//!
//! Measures the tokenizer + dispatch hot loop on three synthetic
//! documents (xmlgen recursive, DBLP-like, SHAKE-like), comparing:
//!
//! - **old**: the pre-interning event path — the [`legacy`] module below
//!   vendors the previous `StreamParser` verbatim (byte-level scanning,
//!   a fresh `String` per tag name, a fresh `Vec<Attribute>` per begin
//!   event, owned events queued through a `VecDeque`), and dispatch
//!   interest is probed through a `HashMap<String, u32>` keyed by the
//!   element name, exactly how the dispatch index interned names before
//!   symbols were global;
//! - **new**: `StreamParser::next_raw` — borrowed `RawEvent`s over
//!   reused scratch buffers, runtime-dispatched SIMD byte scanning
//!   (scalar/SWAR/SSE2/AVX2, see `xsq_xml::scan`), `Sym(u32)` names,
//!   dispatch probed by dense `Vec` index. The no-match steady state
//!   performs zero heap allocations.
//!
//! Both paths run in the same process on the same documents. Writes
//! machine-readable results to `BENCH_parse.json` at the repo root
//! (override with the first CLI argument; second argument scales the
//! document size in bytes), recording the active scan kernel, core
//! count, and detected CPU features so trajectories across containers
//! stay interpretable. Run with
//! `cargo run --release -p xsq-bench --bin parse-bench`.
//!
//! # Throughput floor gate
//!
//! Full-size runs enforce two floors so kernel wins cannot silently
//! regress. Both gate on the AVX2 tier being active (pin a slower tier
//! with `XSQ_SCAN_KERNEL` to measure it without tripping the gate; on
//! scalar-only hardware the checksum equivalence in `measure` is the
//! only assertion):
//!
//! 1. **Relative (machine-independent):** the interleaved old/new
//!    speedup must hold the PR 6 level on ≥ 2 of the 3 corpora. The
//!    vendored legacy path is frozen, so this ratio transfers across
//!    machines.
//! 2. **Absolute (calibrated):** `new_mb_per_sec` ≥ 1.5× the PR 6
//!    baseline on ≥ 2 of 3 corpora — enforced only when the frozen
//!    legacy path measures within 5% of its PR 6 MB/s on every corpus,
//!    which proves the hardware is comparable. On slower containers the
//!    absolute leg downgrades to a printed calibration note.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use legacy::LegacyEvent;
use xsq_datagen::{dblp, shake, xmlgen};
use xsq_xml::{RawEvent, StreamParser, Sym};

/// The pre-interning pull parser, preserved as the benchmark baseline.
/// This is the previous `xsq_xml::parser` hot path with its exact
/// allocation behavior: `String` names, per-begin attribute vectors,
/// owned events. Error paths are collapsed to panics — benchmark inputs
/// are well-formed by construction.
mod legacy {
    use std::collections::VecDeque;

    use xsq_xml::entities::decode_into;

    /// The pre-PR owned event: every name a fresh heap allocation.
    #[derive(Debug, PartialEq, Eq)]
    pub enum LegacyEvent {
        StartDocument,
        EndDocument,
        Begin {
            name: String,
            attributes: Vec<(String, String)>,
            depth: u32,
        },
        End {
            name: String,
            depth: u32,
        },
        Text {
            element: String,
            text: String,
            depth: u32,
        },
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum DocState {
        Init,
        BeforeRoot,
        InRoot,
        AfterRoot,
        Done,
    }

    pub struct LegacyParser<'a> {
        input: &'a [u8],
        pos: usize,
        state: DocState,
        stack: Vec<String>,
        pending: VecDeque<LegacyEvent>,
        text: String,
        scratch: Vec<u8>,
    }

    impl<'a> LegacyParser<'a> {
        pub fn new(input: &'a [u8]) -> Self {
            LegacyParser {
                input,
                pos: 0,
                state: DocState::Init,
                stack: Vec::new(),
                pending: VecDeque::new(),
                text: String::new(),
                scratch: Vec::new(),
            }
        }

        pub fn next_event(&mut self) -> Option<LegacyEvent> {
            loop {
                if let Some(ev) = self.pending.pop_front() {
                    return Some(ev);
                }
                match self.state {
                    DocState::Init => {
                        self.state = DocState::BeforeRoot;
                        return Some(LegacyEvent::StartDocument);
                    }
                    DocState::Done => return None,
                    _ => self.advance(),
                }
            }
        }

        fn advance(&mut self) {
            loop {
                match self.next_byte() {
                    None => {
                        assert!(self.stack.is_empty(), "unclosed elements");
                        self.state = DocState::Done;
                        self.pending.push_back(LegacyEvent::EndDocument);
                        return;
                    }
                    Some(b'<') => {
                        self.parse_markup();
                        if !self.pending.is_empty() {
                            return;
                        }
                    }
                    Some(b) => self.read_text(b),
                }
            }
        }

        fn read_text(&mut self, b: u8) {
            self.scratch.clear();
            self.scratch.push(b);
            self.take_until(|c| c == b'<');
            let raw = std::str::from_utf8(&self.scratch).expect("valid UTF-8");
            if self.state != DocState::InRoot {
                assert!(raw.chars().all(char::is_whitespace), "content outside root");
                return;
            }
            // The old parser decoded into a temporary, then appended.
            let mut decoded = String::new();
            decode_into(raw, 0, &mut decoded).expect("entities decode");
            self.text.push_str(&decoded);
        }

        fn flush_text(&mut self) {
            if self.text.is_empty() {
                return;
            }
            let keep = !self.text.chars().all(char::is_whitespace);
            if keep && !self.stack.is_empty() {
                let element = self.stack.last().expect("in root").clone();
                let depth = self.stack.len() as u32;
                self.pending.push_back(LegacyEvent::Text {
                    element,
                    text: std::mem::take(&mut self.text),
                    depth,
                });
            } else {
                self.text.clear();
            }
        }

        fn parse_markup(&mut self) {
            match self.peek_byte().expect("markup after '<'") {
                b'/' => {
                    self.next_byte();
                    self.flush_text();
                    self.parse_end_tag();
                }
                b'!' => {
                    self.next_byte();
                    self.parse_declaration();
                }
                b'?' => {
                    self.next_byte();
                    self.skip_until(b"?>");
                }
                _ => {
                    self.flush_text();
                    self.parse_start_tag();
                }
            }
        }

        fn parse_start_tag(&mut self) {
            if self.state == DocState::BeforeRoot {
                self.state = DocState::InRoot;
            }
            let name = self.read_name();
            let mut attributes = Vec::new();
            let self_closing = self.parse_attributes(&mut attributes);
            self.stack.push(name.clone());
            let depth = self.stack.len() as u32;
            self.pending.push_back(LegacyEvent::Begin {
                name: name.clone(),
                attributes,
                depth,
            });
            if self_closing {
                self.stack.pop();
                self.pending.push_back(LegacyEvent::End { name, depth });
                if self.stack.is_empty() {
                    self.state = DocState::AfterRoot;
                }
            }
        }

        fn parse_end_tag(&mut self) {
            let name = self.read_name();
            self.skip_whitespace();
            assert_eq!(self.next_byte(), Some(b'>'), "junk in closing tag");
            let open = self.stack.pop().expect("balanced tags");
            assert_eq!(open, name, "tag mismatch");
            let depth = self.stack.len() as u32 + 1;
            self.pending.push_back(LegacyEvent::End { name, depth });
            if self.stack.is_empty() {
                self.state = DocState::AfterRoot;
            }
        }

        fn parse_declaration(&mut self) {
            if self.try_consume(b"--") {
                return self.skip_until(b"-->");
            }
            if self.try_consume(b"[CDATA[") {
                return self.read_cdata();
            }
            let mut bracket_depth = 0i32;
            loop {
                match self.next_byte().expect("declaration") {
                    b'[' => bracket_depth += 1,
                    b']' => bracket_depth -= 1,
                    b'>' if bracket_depth <= 0 => return,
                    _ => {}
                }
            }
        }

        fn read_cdata(&mut self) {
            self.scratch.clear();
            loop {
                let b = self.next_byte().expect("CDATA section");
                self.scratch.push(b);
                if self.scratch.ends_with(b"]]>") {
                    self.scratch.truncate(self.scratch.len() - 3);
                    break;
                }
            }
            let raw = std::str::from_utf8(&self.scratch).expect("valid UTF-8");
            self.text.push_str(raw);
        }

        fn read_name(&mut self) -> String {
            self.scratch.clear();
            self.take_until(|b| !is_name_byte(b));
            assert!(!self.scratch.is_empty(), "expected a name");
            String::from_utf8(std::mem::take(&mut self.scratch)).expect("valid UTF-8")
        }

        fn parse_attributes(&mut self, attributes: &mut Vec<(String, String)>) -> bool {
            loop {
                self.skip_whitespace();
                match self.peek_byte().expect("start tag") {
                    b'>' => {
                        self.next_byte();
                        return false;
                    }
                    b'/' => {
                        self.next_byte();
                        assert_eq!(self.next_byte(), Some(b'>'), "expected '>' after '/'");
                        return true;
                    }
                    _ => {
                        let name = self.read_name();
                        self.skip_whitespace();
                        assert_eq!(self.next_byte(), Some(b'='), "attribute missing '='");
                        self.skip_whitespace();
                        let quote = self.next_byte().expect("attribute value");
                        assert!(quote == b'"' || quote == b'\'', "value must be quoted");
                        self.scratch.clear();
                        self.take_until(|b| b == quote || b == b'<');
                        assert_eq!(self.next_byte(), Some(quote), "unterminated value");
                        let raw = std::str::from_utf8(&self.scratch).expect("valid UTF-8");
                        let mut value = String::new();
                        decode_into(raw, 0, &mut value).expect("entities decode");
                        attributes.push((name, value));
                    }
                }
            }
        }

        // ---- byte-level helpers (the pre-SWAR scanning loop) ----------

        fn take_until(&mut self, stop: impl Fn(u8) -> bool) {
            let rest = &self.input[self.pos..];
            match rest.iter().position(|&b| stop(b)) {
                Some(n) => {
                    self.scratch.extend_from_slice(&rest[..n]);
                    self.pos += n;
                }
                None => {
                    self.scratch.extend_from_slice(rest);
                    self.pos = self.input.len();
                }
            }
        }

        fn next_byte(&mut self) -> Option<u8> {
            let b = self.input.get(self.pos).copied();
            if b.is_some() {
                self.pos += 1;
            }
            b
        }

        fn peek_byte(&self) -> Option<u8> {
            self.input.get(self.pos).copied()
        }

        fn skip_whitespace(&mut self) {
            while let Some(b) = self.peek_byte() {
                if b.is_ascii_whitespace() {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }

        fn try_consume(&mut self, expected: &[u8]) -> bool {
            if self.peek_byte() != Some(expected[0]) {
                return false;
            }
            for &e in expected {
                assert_eq!(self.next_byte(), Some(e), "malformed declaration");
            }
            true
        }

        fn skip_until(&mut self, terminator: &[u8]) {
            let mut window: Vec<u8> = Vec::with_capacity(terminator.len());
            loop {
                let b = self.next_byte().expect("unterminated construct");
                window.push(b);
                if window.len() > terminator.len() {
                    window.remove(0);
                }
                if window == terminator {
                    return;
                }
            }
        }
    }

    fn is_name_byte(b: u8) -> bool {
        !b.is_ascii_whitespace() && !matches!(b, b'>' | b'/' | b'=' | b'<' | b'"' | b'\'')
    }
}

/// Dispatch interest: the first `watched` distinct tags of the document,
/// in both the old keying (string hash map) and the new (dense
/// symbol-indexed vector).
struct Interest {
    by_name: HashMap<String, u32>,
    by_sym: Vec<u32>,
}

fn build_interest(doc: &[u8], watched: usize) -> Interest {
    let mut by_name = HashMap::new();
    let mut by_sym = Vec::new();
    let mut parser = StreamParser::new(doc);
    while let Some(ev) = parser.next_raw().expect("document parses") {
        if let RawEvent::Begin { name, .. } = ev {
            if by_name.len() >= watched {
                break;
            }
            let next = by_name.len() as u32;
            let group = *by_name.entry(name.as_str().to_string()).or_insert(next);
            let idx = name.index() as usize;
            if by_sym.len() <= idx {
                by_sym.resize(idx + 1, u32::MAX);
            }
            by_sym[idx] = group;
        }
    }
    Interest { by_name, by_sym }
}

/// Old path: the vendored pre-PR tokenizer producing owned string
/// events, probing the string-keyed dispatch map. Returns (events,
/// checksum).
fn run_old(doc: &[u8], interest: &Interest) -> (u64, u64) {
    let mut parser = legacy::LegacyParser::new(doc);
    let mut events = 0u64;
    let mut checksum = 0u64;
    while let Some(ev) = parser.next_event() {
        events += 1;
        match &ev {
            LegacyEvent::Begin { name, .. } | LegacyEvent::End { name, .. } => {
                if let Some(&g) = interest.by_name.get(name.as_str()) {
                    checksum += g as u64;
                }
            }
            LegacyEvent::Text { element, text, .. } => {
                if let Some(&g) = interest.by_name.get(element.as_str()) {
                    checksum += g as u64 + text.len() as u64;
                }
            }
            _ => {}
        }
        black_box(&ev);
    }
    (events, checksum)
}

fn sym_group(interest: &Interest, sym: Sym) -> Option<u32> {
    match interest.by_sym.get(sym.index() as usize) {
        Some(&g) if g != u32::MAX => Some(g),
        _ => None,
    }
}

/// New path: borrowed events, dense symbol-indexed dispatch probe.
fn run_new(doc: &[u8], interest: &Interest) -> (u64, u64) {
    let mut parser = StreamParser::new(doc);
    let mut events = 0u64;
    let mut checksum = 0u64;
    while let Some(ev) = parser.next_raw().expect("document parses") {
        events += 1;
        match &ev {
            RawEvent::Begin { name, .. } | RawEvent::End { name, .. } => {
                if let Some(g) = sym_group(interest, *name) {
                    checksum += g as u64;
                }
            }
            RawEvent::Text { element, text, .. } => {
                if let Some(g) = sym_group(interest, *element) {
                    checksum += g as u64 + text.len() as u64;
                }
            }
            _ => {}
        }
        black_box(&ev);
    }
    (events, checksum)
}

/// BENCH_parse.json as committed by PR 6, before the kernel family:
/// `(dataset, old_mb_per_sec, new_mb_per_sec, speedup)`. The old column
/// is the frozen legacy path, usable as a hardware gauge.
const PR6_BASELINE: [(&str, f64, f64, f64); 3] = [
    ("xmlgen", 95.67, 213.90, 2.24),
    ("dblp", 116.01, 252.52, 2.18),
    ("shake", 139.10, 326.10, 2.34),
];

fn pr6_baseline(dataset: &str) -> (f64, f64, f64) {
    PR6_BASELINE
        .iter()
        .find(|(d, ..)| *d == dataset)
        .map(|&(_, old, new, speedup)| (old, new, speedup))
        .expect("dataset missing from PR 6 baseline")
}

struct Row {
    dataset: &'static str,
    bytes: usize,
    events: u64,
    old_events_per_sec: f64,
    new_events_per_sec: f64,
    old_mb_per_sec: f64,
    new_mb_per_sec: f64,
    speedup: f64,
}

fn measure(dataset: &'static str, doc: &str) -> Row {
    const WATCHED: usize = 16;
    const REPS: usize = 9;
    let bytes = doc.len();
    let interest = build_interest(doc.as_bytes(), WATCHED);

    // Warm both paths (page-in, symbol interning) before any timing.
    let (events, old_sum) = run_old(doc.as_bytes(), &interest);
    let (new_events, new_sum) = run_new(doc.as_bytes(), &interest);
    assert_eq!(events, new_events, "paths disagree on event count");
    assert_eq!(old_sum, new_sum, "paths disagree on dispatch checksum");

    // Interleave timed reps so frequency scaling and scheduler noise hit
    // both paths alike, and keep the best of each: the minimum is the
    // least-disturbed run, and the ratio of minima is what the speedup
    // claim is about.
    let mut old_secs = f64::INFINITY;
    let mut new_secs = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let r = run_old(doc.as_bytes(), &interest);
        old_secs = old_secs.min(t0.elapsed().as_secs_f64());
        assert_eq!(r, (events, old_sum), "old path is non-deterministic");
        let t0 = Instant::now();
        let r = run_new(doc.as_bytes(), &interest);
        new_secs = new_secs.min(t0.elapsed().as_secs_f64());
        assert_eq!(r, (events, new_sum), "new path is non-deterministic");
    }

    let mb = bytes as f64 / (1024.0 * 1024.0);
    Row {
        dataset,
        bytes,
        events,
        old_events_per_sec: events as f64 / old_secs,
        new_events_per_sec: events as f64 / new_secs,
        old_mb_per_sec: mb / old_secs,
        new_mb_per_sec: mb / new_secs,
        speedup: old_secs / new_secs,
    }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parse.json").to_string()
    });
    let size: usize = std::env::args()
        .nth(2)
        .map(|s| s.parse().expect("size in bytes"))
        .unwrap_or(1 << 22);
    const SEED: u64 = 2003;

    let docs: [(&'static str, String); 3] = [
        (
            "xmlgen",
            xmlgen::generate(
                xmlgen::XmlGenParams {
                    nested_levels: 15,
                    max_repeats: 20,
                    seed: SEED,
                },
                size,
            ),
        ),
        ("dblp", dblp::generate(SEED, size)),
        ("shake", shake::generate(SEED, size)),
    ];

    println!(
        "{:>8} {:>9} {:>9} {:>13} {:>13} {:>9} {:>9} {:>8}",
        "dataset", "bytes", "events", "old ev/s", "new ev/s", "old MB/s", "new MB/s", "speedup"
    );
    let mut rows = Vec::new();
    for (name, doc) in &docs {
        let r = measure(name, doc);
        println!(
            "{:>8} {:>9} {:>9} {:>13.0} {:>13.0} {:>9.1} {:>9.1} {:>7.2}x",
            r.dataset,
            r.bytes,
            r.events,
            r.old_events_per_sec,
            r.new_events_per_sec,
            r.old_mb_per_sec,
            r.new_mb_per_sec,
            r.speedup
        );
        // The acceptance bar: ≥2× events/s over the string path. Tiny
        // documents (the CI smoke invocation) are too noisy to gate on;
        // the default 4 MiB runs are not.
        if r.events >= 10_000 {
            assert!(
                r.speedup >= 2.0,
                "zero-copy path must be ≥2× the string path on {}, got {:.2}x",
                r.dataset,
                r.speedup
            );
        }
        rows.push(r);
    }
    enforce_kernel_floor(&rows);

    let kernel = xsq_xml::scan::active_kernel();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let features = xsq_xml::scan::cpu_features();
    let mut json = String::from("{\n  \"benchmark\": \"parse_event_path\",\n");
    let _ = writeln!(json, "  \"doc_bytes\": {size},");
    let _ = writeln!(json, "  \"kernel\": \"{kernel}\",");
    let _ = writeln!(json, "  \"cores\": {cores},");
    let _ = writeln!(json, "  \"cpu_features\": \"{features}\",");
    json.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"dataset\": \"{}\", \"bytes\": {}, \"events\": {}, \
             \"old_events_per_sec\": {:.0}, \"new_events_per_sec\": {:.0}, \
             \"old_mb_per_sec\": {:.2}, \"new_mb_per_sec\": {:.2}, \
             \"speedup\": {:.2}}}",
            r.dataset,
            r.bytes,
            r.events,
            r.old_events_per_sec,
            r.new_events_per_sec,
            r.old_mb_per_sec,
            r.new_mb_per_sec,
            r.speedup
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write BENCH_parse.json");
    println!("\nwrote {out_path} (kernel: {kernel}, cores: {cores})");
}

/// The kernel-family throughput floor (see the module doc). Applies only
/// to full-size runs on the AVX2 tier; smoke runs and pinned slower
/// tiers are exempt, and scalar-only hardware asserts equivalence alone.
fn enforce_kernel_floor(rows: &[Row]) {
    use xsq_xml::scan::Kernel;
    if rows.iter().any(|r| r.events < 10_000) {
        return; // smoke-size run: too noisy to gate
    }
    if xsq_xml::scan::active_kernel() != Kernel::Avx2 {
        return;
    }

    // Relative leg: machine-independent because the legacy divisor is
    // frozen. Require the PR 6 speedup to hold on ≥ 2 of 3 corpora.
    let held: Vec<&Row> = rows
        .iter()
        .filter(|r| r.speedup >= pr6_baseline(r.dataset).2)
        .collect();
    assert!(
        held.len() >= 2,
        "AVX2 kernel floor: speedup must hold the PR 6 level on ≥ 2 of 3 \
         corpora; held on {} ({:?})",
        held.len(),
        held.iter().map(|r| r.dataset).collect::<Vec<_>>()
    );

    // Absolute leg: only meaningful when the frozen legacy path proves
    // the hardware comparable to the PR 6 machine (within 5% on every
    // corpus). Containers vary widely; calibrating avoids gating the
    // kernel work on the scheduler's mood.
    let calibrated = rows
        .iter()
        .all(|r| r.old_mb_per_sec >= 0.95 * pr6_baseline(r.dataset).0);
    if calibrated {
        let hit = rows
            .iter()
            .filter(|r| r.new_mb_per_sec >= 1.5 * pr6_baseline(r.dataset).1)
            .count();
        assert!(
            hit >= 2,
            "AVX2 kernel floor: new_mb_per_sec must reach 1.5x the PR 6 \
             baseline on ≥ 2 of 3 corpora on calibrated hardware; hit {hit}"
        );
    } else {
        println!(
            "note: legacy path below 95% of its PR 6 MB/s — hardware not \
             comparable; absolute 1.5x floor skipped (relative floor held)"
        );
    }
}
