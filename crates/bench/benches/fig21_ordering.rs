//! Fig. 21 — data-ordering sensitivity: the same (empty) result set,
//! radically different buffering costs depending on where the
//! falsifying evidence sits (`prior`, `posterior`, `@id`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xsq_baselines::SaxonLike;
use xsq_bench::datasets::{ordering, Scale};
use xsq_bench::experiments::ORDERING_QUERIES;
use xsq_core::{XPathEngine, XsqF, XsqNc};

fn bench(c: &mut Criterion) {
    let scale = Scale::with_bytes(256 * 1024);
    let doc = ordering(scale);

    let mut group = c.benchmark_group("fig21");
    group.throughput(Throughput::Bytes(doc.len() as u64));
    group.sample_size(10);
    for engine in [&XsqNc as &dyn XPathEngine, &XsqF, &SaxonLike] {
        for (label, query) in ORDERING_QUERIES {
            group.bench_with_input(BenchmarkId::new(engine.name(), label), &query, |b, q| {
                b.iter(|| engine.run(q, doc.as_bytes()).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
