//! Fig. 20 — recursive data + closure query: XSQ-F's memory stays
//! bounded by the largest element even under heavy nondeterminism.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xsq_baselines::SaxonLike;
use xsq_bench::datasets::{recursive_sweep, Scale};
use xsq_core::{XPathEngine, XsqF};

fn bench(c: &mut Criterion) {
    let scale = Scale::with_bytes(128 * 1024);
    let sweep = recursive_sweep(scale, 3);
    let query = "//pub[year]//book[@id]/title/text()";

    let mut group = c.benchmark_group("fig20");
    group.sample_size(10);
    for (size, doc) in &sweep {
        group.throughput(Throughput::Bytes(*size as u64));
        for engine in [&XsqF as &dyn XPathEngine, &SaxonLike] {
            let r = engine.run(query, doc.as_bytes()).unwrap();
            eprintln!(
                "fig20 memory: {} @ {} KB -> {} KB peak",
                engine.name(),
                size / 1024,
                r.memory.total_peak_bytes() / 1024
            );
            group.bench_with_input(BenchmarkId::new(engine.name(), size / 1024), doc, |b, d| {
                b.iter(|| engine.run(query, d.as_bytes()).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
