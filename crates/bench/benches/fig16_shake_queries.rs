//! Fig. 16 — throughput of every system on the three SHAKE queries.
//!
//! Criterion reports bytes/second per (system, query) pair; dividing by
//! the `pure_parser` baseline group gives the paper's relative
//! throughput. Run with `cargo bench --bench fig16_shake_queries`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xsq_bench::datasets::{equal_sized, Scale};
use xsq_bench::experiments::SHAKE_QUERIES;
use xsq_xml::PureParser;

fn bench(c: &mut Criterion) {
    let scale = Scale::with_bytes(256 * 1024);
    let doc = equal_sized("SHAKE", scale);
    let bytes = doc.len() as u64;

    let mut group = c.benchmark_group("fig16");
    group.throughput(Throughput::Bytes(bytes));
    group.sample_size(10);

    group.bench_function("pure_parser", |b| {
        b.iter(|| PureParser::run(doc.as_bytes()).unwrap())
    });

    for engine in xsq_baselines::all_engines() {
        for (qname, query) in SHAKE_QUERIES {
            if engine.run(query, doc.as_bytes()).is_err() {
                continue; // unsupported (Fig. 14)
            }
            group.bench_with_input(BenchmarkId::new(engine.name(), qname), &query, |b, q| {
                b.iter(|| engine.run(q, doc.as_bytes()).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
