//! Fig. 19 — memory scaling on DBLP excerpts.
//!
//! Criterion measures the run time across growing excerpts; the peak
//! memory per point (the figure's y-axis) is printed once per engine to
//! stderr and, canonically, by `experiments fig19`. The shape to check:
//! streaming engines flat, DOM engines linear with a ≈4–5× factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xsq_baselines::SaxonLike;
use xsq_bench::datasets::{dblp_excerpts, Scale};
use xsq_core::{XPathEngine, XsqF, XsqNc};

fn bench(c: &mut Criterion) {
    let scale = Scale::with_bytes(128 * 1024);
    let excerpts = dblp_excerpts(scale, 4);
    let query = "/dblp/inproceedings[author]/title/text()";

    let mut group = c.benchmark_group("fig19");
    group.sample_size(10);
    for (size, doc) in &excerpts {
        group.throughput(Throughput::Bytes(*size as u64));
        for engine in [&XsqF as &dyn XPathEngine, &XsqNc, &SaxonLike] {
            let r = engine.run(query, doc.as_bytes()).unwrap();
            eprintln!(
                "fig19 memory: {} @ {} KB -> {} KB peak",
                engine.name(),
                size / 1024,
                r.memory.total_peak_bytes() / 1024
            );
            group.bench_with_input(BenchmarkId::new(engine.name(), size / 1024), doc, |b, d| {
                b.iter(|| engine.run(query, d.as_bytes()).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
