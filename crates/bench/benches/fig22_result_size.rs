//! Fig. 22 — result-size sensitivity: queries returning 10% / 30% / 60%
//! of the data.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xsq_baselines::{JoostLike, SaxonLike, XmltkLike};
use xsq_bench::datasets::{colors, Scale};
use xsq_core::{XPathEngine, XsqF, XsqNc};

fn bench(c: &mut Criterion) {
    let scale = Scale::with_bytes(256 * 1024);
    let doc = colors(scale);

    let mut group = c.benchmark_group("fig22");
    group.throughput(Throughput::Bytes(doc.len() as u64));
    group.sample_size(10);
    for engine in [
        &XsqNc as &dyn XPathEngine,
        &XsqF,
        &XmltkLike,
        &SaxonLike,
        &JoostLike,
    ] {
        for (label, query) in [
            ("red10", "/a/red"),
            ("green30", "/a/green"),
            ("blue60", "/a/blue"),
        ] {
            group.bench_with_input(BenchmarkId::new(engine.name(), label), &query, |b, q| {
                b.iter(|| engine.run(q, doc.as_bytes()).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
