//! Fig. 17 — throughput of every system across the four datasets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xsq_bench::datasets::{equal_sized, Scale};
use xsq_bench::experiments::DATASET_QUERIES;

fn bench(c: &mut Criterion) {
    let scale = Scale::with_bytes(256 * 1024);
    let mut group = c.benchmark_group("fig17");
    group.sample_size(10);
    for (dataset, query) in DATASET_QUERIES {
        let doc = equal_sized(dataset, scale);
        group.throughput(Throughput::Bytes(doc.len() as u64));
        for engine in xsq_baselines::all_engines() {
            if engine.run(query, doc.as_bytes()).is_err() {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(engine.name(), dataset), &query, |b, q| {
                b.iter(|| engine.run(q, doc.as_bytes()).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
