//! Microbenchmarks and ablations beyond the paper's figures:
//!
//! * raw parser throughput (the PureParser upper bound of §6.2);
//! * HPDT compilation cost per query shape;
//! * the XSQ-NC first-match-scan ablation: the same closure-free query
//!   on the same HPDT with the nondeterministic full-scan runtime vs.
//!   the deterministic fast path (the design choice §6.2 measures);
//! * depth-vector and buffer operation costs under heavy recursion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use xsq_bench::datasets::{equal_sized, Scale};
use xsq_core::{build_hpdt, CountingSink, Runner, XsqEngine};
use xsq_xml::{parse_to_events, PureParser};
use xsq_xpath::parse_query;

fn bench(c: &mut Criterion) {
    let scale = Scale::with_bytes(256 * 1024);
    let doc = equal_sized("DBLP", scale);

    let mut group = c.benchmark_group("micro");
    group.throughput(Throughput::Bytes(doc.len() as u64));
    group.sample_size(10);

    group.bench_function("pure_parse", |b| {
        b.iter(|| PureParser::run(doc.as_bytes()).unwrap())
    });

    // Compile cost per query shape.
    group.sample_size(30);
    for q in [
        "/dblp/article/title/text()",
        "//pub[year>2000]//book[author]//name/text()",
        "/a[@x]/b[c]/d[e=1]/f[g@h<2]/i[text()%j]/text()",
    ] {
        group.bench_with_input(BenchmarkId::new("compile", q.len()), &q, |b, q| {
            b.iter(|| build_hpdt(&parse_query(q).unwrap()).unwrap())
        });
    }

    // Scan-policy ablation: identical HPDT, full scan vs. first-match.
    group.sample_size(10);
    let query = "/dblp/inproceedings[author]/title/text()";
    let hpdt = build_hpdt(&parse_query(query).unwrap()).unwrap();
    let events = parse_to_events(doc.as_bytes()).unwrap();
    for (label, scan_all) in [
        ("scan-all (XSQ-F policy)", true),
        ("first-match (XSQ-NC)", false),
    ] {
        group.bench_with_input(
            BenchmarkId::new("scan_policy", label),
            &scan_all,
            |b, &s| {
                b.iter(|| {
                    let mut runner = Runner::new(&hpdt, s);
                    let mut sink = CountingSink::new();
                    for e in &events {
                        runner.feed(e, &mut sink);
                    }
                    runner.finish(&mut sink)
                })
            },
        );
    }

    // End-to-end engine run, parse included (what Figs. 16-17 time).
    let compiled = XsqEngine::full().compile_str(query).unwrap();
    group.bench_function("xsq_f_end_to_end", |b| {
        b.iter(|| {
            let mut sink = CountingSink::new();
            compiled.run_document(doc.as_bytes(), &mut sink).unwrap()
        })
    });

    // Multi-query grouping (§5 / YFilter): N standing queries in one
    // stream pass vs. N separate passes.
    let standing = [
        "/dblp/article/title/text()",
        "/dblp/inproceedings[author]/title/text()",
        "/dblp/article[year>=2000]/title/text()",
        "/dblp/inproceedings/@key",
        "/dblp/article/author/text()",
        "/dblp/inproceedings/booktitle/text()",
        "/dblp/article/year/sum()",
        "/dblp/inproceedings/count()",
    ];
    let set = xsq_core::QuerySet::compile(XsqEngine::full(), &standing).unwrap();
    group.bench_function("multi_query/one_pass", |b| {
        b.iter(|| set.run_document(doc.as_bytes()).unwrap())
    });
    let singles: Vec<_> = standing
        .iter()
        .map(|q| XsqEngine::full().compile_str(q).unwrap())
        .collect();
    group.bench_function("multi_query/separate_passes", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for c in &singles {
                let mut sink = CountingSink::new();
                c.run_document(doc.as_bytes(), &mut sink).unwrap();
                total += sink.results;
            }
            total
        })
    });

    // Schema-rewrite ablation (§5 future work): the same semantics with
    // closures vs. after the DTD-driven closure elimination.
    let dtd = xsq_xml::dtd::Dtd::from_edges(&[
        ("dblp", &["article", "inproceedings"]),
        ("article", &["author", "title", "year", "pages"]),
        (
            "inproceedings",
            &["author", "title", "year", "pages", "booktitle"],
        ),
    ]);
    let closure_query = parse_query("//dblp//article//title/text()").unwrap();
    let (rewritten, analysis) = xsq_core::schema::optimize(&closure_query, &dtd);
    assert!(analysis.satisfiable && !rewritten.has_closure());
    for (label, q) in [
        ("with_closures", &closure_query),
        ("schema_rewritten", &rewritten),
    ] {
        let compiled = XsqEngine::full().compile(q).unwrap();
        group.bench_with_input(
            BenchmarkId::new("schema_rewrite", label),
            &compiled,
            |b, c| {
                b.iter(|| {
                    let mut sink = CountingSink::new();
                    c.run_document(doc.as_bytes(), &mut sink).unwrap()
                })
            },
        );
    }
    // §3.1 ablation: the naive per-item-flags engine (whole-buffer rescan
    // per predicate event) vs. the HPDT on buffering-heavy data — "such
    // methods significantly degrade the performance".
    let ordering_doc = xsq_datagen::toxgene::ordering_dataset(64 * 1024, 200);
    let naive_query = "/doc/a[posterior=1]/foo/text()";
    let naive_compiled = XsqEngine::full().compile_str(naive_query).unwrap();
    group.bench_function("naive_flags_ablation/hpdt", |b| {
        b.iter(|| {
            let mut sink = CountingSink::new();
            naive_compiled
                .run_document(ordering_doc.as_bytes(), &mut sink)
                .unwrap()
        })
    });
    group.bench_function("naive_flags_ablation/naive", |b| {
        b.iter(|| {
            xsq_baselines::NaiveFlags
                .run_counting(naive_query, ordering_doc.as_bytes())
                .unwrap()
                .1
        })
    });
    // Stream-projection ablation (the XMLTK companion technique): run a
    // selective query on the full stream vs. on the projected stream.
    let proj_query = parse_query("/dblp/inproceedings[author]/title/text()").unwrap();
    let proj_compiled = XsqEngine::full().compile(&proj_query).unwrap();
    group.bench_function("projection/full_stream", |b| {
        b.iter(|| {
            let mut sink = CountingSink::new();
            proj_compiled.run_events(&events, &mut sink);
            sink.results
        })
    });
    let projected = xsq_core::projector::project_events(&proj_query, &events);
    eprintln!(
        "projection kept {}/{} events",
        projected.len(),
        events.len()
    );
    group.bench_function("projection/projected_stream", |b| {
        b.iter(|| {
            let mut sink = CountingSink::new();
            proj_compiled.run_events(&projected, &mut sink);
            sink.results
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
