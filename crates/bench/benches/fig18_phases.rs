//! Fig. 18 — per-phase cost: query compilation, preprocessing, querying.
//!
//! The compile benches isolate the "Building" bar (parse the query,
//! build the engine); the preprocess benches isolate DOM/index
//! construction; the query benches run over preprocessed state where the
//! engine separates the phases.

use criterion::{criterion_group, criterion_main, Criterion};
use xsq_baselines::dom::Document;
use xsq_baselines::xqengine::IndexedDocument;
use xsq_bench::datasets::{equal_sized, Scale};
use xsq_bench::experiments::SHAKE_QUERIES;
use xsq_core::XsqEngine;
use xsq_xpath::parse_query;

fn bench(c: &mut Criterion) {
    let scale = Scale::with_bytes(256 * 1024);
    let doc = equal_sized("SHAKE", scale);
    let query = SHAKE_QUERIES[1].1;

    let mut group = c.benchmark_group("fig18");
    group.sample_size(20);

    // Building: query → engine.
    group.bench_function("build/xsq-f", |b| {
        b.iter(|| XsqEngine::full().compile_str(query).unwrap())
    });
    group.bench_function("build/xsq-nc", |b| {
        b.iter(|| XsqEngine::no_closure().compile_str(query).unwrap())
    });

    // Preprocessing: document materialization (DOM engines, XQEngine).
    group.sample_size(10);
    group.bench_function("preprocess/dom", |b| {
        b.iter(|| Document::parse(doc.as_bytes()).unwrap())
    });
    group.bench_function("preprocess/xqengine-index", |b| {
        b.iter(|| IndexedDocument::build(doc.as_bytes()).unwrap())
    });

    // Querying with preprocessing amortized (the paper: "as long as
    // these systems remain in memory, subsequent queries can be
    // evaluated much faster").
    let tree = Document::parse(doc.as_bytes()).unwrap();
    let q = parse_query(query).unwrap();
    group.bench_function("query/dom-resident", |b| {
        b.iter(|| xsq_baselines::dom::eval_stepwise(&tree, &q))
    });
    let compiled = XsqEngine::full().compile_str(query).unwrap();
    group.bench_function("query/xsq-f-stream", |b| {
        b.iter(|| {
            let mut sink = xsq_core::CountingSink::new();
            compiled.run_document(doc.as_bytes(), &mut sink).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
