//! The reference client: replays a corpus over the wire and renders
//! the replies in exactly the sequential driver's output format.
//!
//! `xsq connect` is built on this module, and so is the loopback
//! conformance gate: [`run_corpus`] prints each document's updates
//! then results as `doc<TAB>query<TAB>value` lines — byte-identical to
//! `xsq multi --shard 1` — while [`reference_output`] renders the same
//! corpus through [`run_sequential_with`] in process. Comparing the
//! two strings proves the whole network path (framing, push parsing,
//! per-session index, result streaming) is an identity transform on
//! the engine's output.

use std::fmt::Write as _;
use std::io::{BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::Duration;

use xsq_core::{run_sequential_with, QuerySet, XsqEngine};

use crate::proto::{err_code, op, read_frame, write_frame, Frame, WireBound, MAX_FRAME};

/// How one corpus replay went.
#[derive(Debug, Default)]
pub struct ClientReport {
    pub docs: usize,
    pub results: u64,
    pub updates: u64,
    /// The server's STAT JSON, when requested.
    pub stats_json: Option<String>,
    /// Per-query static memory bounds from the SUB_OK tail, in query
    /// order. Empty when talking to a server that predates bounds.
    pub bounds: Vec<WireBound>,
}

/// Client-side failures, split for distinct CLI exit codes.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    /// The server broke the protocol (unexpected opcode, bad payload).
    Protocol(String),
    /// The server replied with a framed error.
    Remote {
        code: String,
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Remote { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Corpus replay settings.
#[derive(Debug, Clone)]
pub struct ConnectOptions {
    /// FEED chunk size in bytes (1 exercises every token split).
    pub chunk: usize,
    /// Print running aggregate updates (`# running[d:q]: v` lines).
    pub running: bool,
    /// Request STAT before BYE and carry it in the report.
    pub want_stats: bool,
}

impl Default for ConnectOptions {
    fn default() -> Self {
        ConnectOptions {
            chunk: 64 * 1024,
            running: false,
            want_stats: false,
        }
    }
}

fn remote_err(payload: &[u8]) -> ClientError {
    let code = err_code(payload).unwrap_or("unknown").to_string();
    let message = String::from_utf8_lossy(payload).into_owned();
    ClientError::Remote { code, message }
}

/// Replay `docs` against a server, writing rendered results to `out`.
///
/// One SUB carries the whole query set, so the server's prefix-shared
/// plan is structurally identical to the in-process [`QuerySet`] plan
/// and results arrive in the same order the sequential driver emits
/// them. Per document the client batches RESULT/UPDATE frames until
/// DOC_OK, then renders updates (if enabled) before results — the
/// `run_sequential_with` presentation.
pub fn run_corpus(
    addr: &str,
    queries: &[&str],
    docs: &[impl AsRef<[u8]>],
    opts: &ConnectOptions,
    out: &mut impl Write,
) -> Result<ClientReport, ClientError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    // A correctness client, not a soak client: a stuck server should
    // fail the run rather than hang it.
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);

    let mut next = |writer: &mut BufWriter<TcpStream>| -> Result<Frame, ClientError> {
        writer.flush()?;
        match read_frame(&mut reader, MAX_FRAME)? {
            Some(f) => Ok(f),
            None => Err(ClientError::Protocol(
                "server closed the connection mid-conversation".into(),
            )),
        }
    };

    write_frame(&mut writer, op::SUB, queries.join("\n").as_bytes())?;
    let reply = next(&mut writer)?;
    let (ids, bounds) = match reply.op {
        op::SUB_OK => {
            if reply.payload.len() < 4 {
                return Err(ClientError::Protocol("short SUB_OK".into()));
            }
            let count = u32::from_le_bytes(reply.payload[..4].try_into().unwrap());
            // ids then (on servers that compute them) one WireBound per
            // query; older servers simply end the payload after the ids.
            let tail = reply.payload.get(4 + 4 * count as usize..).unwrap_or(&[]);
            let mut bounds = Vec::new();
            if tail.len() == count as usize * WireBound::SIZE {
                for raw in tail.chunks_exact(WireBound::SIZE) {
                    match WireBound::decode(raw) {
                        Some(b) => bounds.push(b),
                        None => {
                            return Err(ClientError::Protocol(
                                "malformed bound in SUB_OK tail".into(),
                            ))
                        }
                    }
                }
            }
            (count, bounds)
        }
        op::ERR => return Err(remote_err(&reply.payload)),
        other => {
            return Err(ClientError::Protocol(format!(
                "expected SUB_OK, got opcode 0x{other:02x}"
            )))
        }
    };
    if ids as usize != queries.len() {
        return Err(ClientError::Protocol(format!(
            "subscribed {} queries, server acked {ids}",
            queries.len()
        )));
    }

    let mut report = ClientReport {
        bounds,
        ..ClientReport::default()
    };
    let chunk = opts.chunk.max(1);
    for (di, doc) in docs.iter().enumerate() {
        for piece in doc.as_ref().chunks(chunk) {
            write_frame(&mut writer, op::FEED, piece)?;
        }
        write_frame(&mut writer, op::END_DOC, &[])?;
        let mut results: Vec<(u32, String)> = Vec::new();
        let mut updates: Vec<(u32, f64)> = Vec::new();
        loop {
            let frame = next(&mut writer)?;
            match frame.op {
                op::RESULT => {
                    if frame.payload.len() < 4 {
                        return Err(ClientError::Protocol("short RESULT".into()));
                    }
                    let id = u32::from_le_bytes(frame.payload[..4].try_into().unwrap());
                    let value = String::from_utf8_lossy(&frame.payload[4..]).into_owned();
                    results.push((id, value));
                }
                op::UPDATE => {
                    if frame.payload.len() != 12 {
                        return Err(ClientError::Protocol("short UPDATE".into()));
                    }
                    let id = u32::from_le_bytes(frame.payload[..4].try_into().unwrap());
                    let value = f64::from_le_bytes(frame.payload[4..].try_into().unwrap());
                    updates.push((id, value));
                }
                op::DOC_OK => break,
                op::ERR => return Err(remote_err(&frame.payload)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected opcode 0x{other:02x} during document"
                    )))
                }
            }
        }
        report.docs += 1;
        report.results += results.len() as u64;
        report.updates += updates.len() as u64;
        if opts.running {
            for (id, v) in &updates {
                writeln!(out, "# running[{di}:{id}]: {v}").map_err(ClientError::Io)?;
            }
        }
        for (id, v) in &results {
            writeln!(out, "{di}\t{id}\t{v}").map_err(ClientError::Io)?;
        }
    }

    if opts.want_stats {
        write_frame(&mut writer, op::STAT, &[])?;
        let frame = next(&mut writer)?;
        match frame.op {
            op::STAT_OK => {
                report.stats_json = Some(String::from_utf8_lossy(&frame.payload).into_owned());
            }
            op::ERR => return Err(remote_err(&frame.payload)),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected STAT_OK, got opcode 0x{other:02x}"
                )))
            }
        }
    }

    write_frame(&mut writer, op::BYE, &[])?;
    let frame = next(&mut writer)?;
    if frame.op != op::OK {
        return Err(ClientError::Protocol(format!(
            "expected OK for BYE, got opcode 0x{:02x}",
            frame.op
        )));
    }
    Ok(report)
}

/// Render the corpus through the in-process sequential driver in the
/// exact format [`run_corpus`] prints — the byte-comparison oracle.
pub fn reference_output(
    engine: XsqEngine,
    queries: &[&str],
    docs: &[impl AsRef<[u8]>],
    running: bool,
) -> Result<String, String> {
    let set = QuerySet::compile(engine, queries)
        .map_err(|(i, e)| format!("query {} ({}): {e}", i + 1, queries[i]))?;
    let mut text = String::new();
    run_sequential_with(&set, docs, |di, out| {
        if running {
            for (id, v) in &out.updates {
                let _ = writeln!(text, "# running[{di}:{}]: {v}", id.0);
            }
        }
        for (id, v) in &out.results {
            let _ = writeln!(text, "{di}\t{}\t{v}", id.0);
        }
    })
    .map_err(|e| e.to_string())?;
    Ok(text)
}
