//! The reference client: replays a corpus over the wire and renders
//! the replies in exactly the sequential driver's output format.
//!
//! `xsq connect` is built on this module, and so is the loopback
//! conformance gate: [`run_corpus`] prints each document's updates
//! then results as `doc<TAB>query<TAB>value` lines — byte-identical to
//! `xsq multi --shard 1` — while [`reference_output`] renders the same
//! corpus through [`run_sequential_with`] in process. Comparing the
//! two strings proves the whole network path (framing, push parsing,
//! per-session index, result streaming) is an identity transform on
//! the engine's output.

use std::fmt::Write as _;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use xsq_core::{run_sequential_with, QuerySet, XsqEngine};

use crate::proto::{err_code, op, read_frame, write_frame, Frame, WireBound, MAX_FRAME};

/// How one corpus replay went.
#[derive(Debug, Default)]
pub struct ClientReport {
    pub docs: usize,
    pub results: u64,
    pub updates: u64,
    /// The server's STAT JSON, when requested.
    pub stats_json: Option<String>,
    /// Per-query static memory bounds from the SUB_OK tail, in query
    /// order. Empty when talking to a server that predates bounds.
    pub bounds: Vec<WireBound>,
    /// Wire bytes this session read off the socket (reply frames).
    pub wire_in: u64,
    /// Wire bytes this session wrote to the socket (request frames).
    pub wire_out: u64,
}

/// A `Read`/`Write` wrapper that counts bytes as they cross the
/// socket, so a session can report its wire footprint (serve-bench
/// derives the fan-out amplification factor from these).
struct Counted<S> {
    inner: S,
    n: Arc<AtomicU64>,
}

impl<S: Read> Read for Counted<S> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.n.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
}

impl<S: Write> Write for Counted<S> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.n.fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// Pull an unsigned integer field out of a flat STAT JSON object.
pub fn stat_field_u64(json: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let at = json.find(&pat)? + pat.len();
    let rest = &json[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Pull a string field out of a flat STAT JSON object.
pub fn stat_field_str<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let at = json.find(&pat)? + pat.len();
    let rest = &json[at..];
    Some(&rest[..rest.find('"')?])
}

/// Decode the transport-observability fields of a STAT reply into one
/// printable line (`None` when the server predates them).
pub fn stat_transport_summary(json: &str) -> Option<String> {
    let connections = stat_field_u64(json, "connections")?;
    Some(format!(
        "model={} connections={connections} sessions={} queue_depth_hwm={} \
         dropped_broadcast={}",
        stat_field_str(json, "model").unwrap_or("?"),
        stat_field_u64(json, "sessions").unwrap_or(0),
        stat_field_u64(json, "queue_depth_hwm").unwrap_or(0),
        stat_field_u64(json, "dropped_broadcast").unwrap_or(0),
    ))
}

/// Client-side failures, split for distinct CLI exit codes.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    /// The server broke the protocol (unexpected opcode, bad payload).
    Protocol(String),
    /// The server replied with a framed error.
    Remote {
        code: String,
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Remote { code, message } => {
                write!(f, "server error [{code}]: {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Corpus replay settings.
#[derive(Debug, Clone)]
pub struct ConnectOptions {
    /// FEED chunk size in bytes (1 exercises every token split).
    pub chunk: usize,
    /// Print running aggregate updates (`# running[d:q]: v` lines).
    pub running: bool,
    /// Request STAT before BYE and carry it in the report.
    pub want_stats: bool,
}

impl Default for ConnectOptions {
    fn default() -> Self {
        ConnectOptions {
            chunk: 64 * 1024,
            running: false,
            want_stats: false,
        }
    }
}

fn remote_err(payload: &[u8]) -> ClientError {
    let code = err_code(payload).unwrap_or("unknown").to_string();
    let message = String::from_utf8_lossy(payload).into_owned();
    ClientError::Remote { code, message }
}

/// Replay `docs` against a server, writing rendered results to `out`.
///
/// One SUB carries the whole query set, so the server's prefix-shared
/// plan is structurally identical to the in-process [`QuerySet`] plan
/// and results arrive in the same order the sequential driver emits
/// them. Per document the client batches RESULT/UPDATE frames until
/// DOC_OK, then renders updates (if enabled) before results — the
/// `run_sequential_with` presentation.
pub fn run_corpus(
    addr: &str,
    queries: &[&str],
    docs: &[impl AsRef<[u8]>],
    opts: &ConnectOptions,
    out: &mut impl Write,
) -> Result<ClientReport, ClientError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    // A correctness client, not a soak client: a stuck server should
    // fail the run rather than hang it.
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let wire_in = Arc::new(AtomicU64::new(0));
    let wire_out = Arc::new(AtomicU64::new(0));
    let mut reader = BufReader::new(Counted {
        inner: stream.try_clone()?,
        n: Arc::clone(&wire_in),
    });
    let mut writer = BufWriter::new(Counted {
        inner: stream,
        n: Arc::clone(&wire_out),
    });

    let mut next = |writer: &mut BufWriter<Counted<TcpStream>>| -> Result<Frame, ClientError> {
        writer.flush()?;
        match read_frame(&mut reader, MAX_FRAME)? {
            Some(f) => Ok(f),
            None => Err(ClientError::Protocol(
                "server closed the connection mid-conversation".into(),
            )),
        }
    };

    write_frame(&mut writer, op::SUB, queries.join("\n").as_bytes())?;
    let reply = next(&mut writer)?;
    let bounds = parse_sub_ok(&reply, queries.len())?;

    let mut report = ClientReport {
        bounds,
        ..ClientReport::default()
    };
    let chunk = opts.chunk.max(1);
    for (di, doc) in docs.iter().enumerate() {
        for piece in doc.as_ref().chunks(chunk) {
            write_frame(&mut writer, op::FEED, piece)?;
        }
        write_frame(&mut writer, op::END_DOC, &[])?;
        let mut results: Vec<(u32, String)> = Vec::new();
        let mut updates: Vec<(u32, f64)> = Vec::new();
        loop {
            let frame = next(&mut writer)?;
            match frame.op {
                op::RESULT => {
                    if frame.payload.len() < 4 {
                        return Err(ClientError::Protocol("short RESULT".into()));
                    }
                    let id = u32::from_le_bytes(frame.payload[..4].try_into().unwrap());
                    let value = String::from_utf8_lossy(&frame.payload[4..]).into_owned();
                    results.push((id, value));
                }
                op::UPDATE => {
                    if frame.payload.len() != 12 {
                        return Err(ClientError::Protocol("short UPDATE".into()));
                    }
                    let id = u32::from_le_bytes(frame.payload[..4].try_into().unwrap());
                    let value = f64::from_le_bytes(frame.payload[4..].try_into().unwrap());
                    updates.push((id, value));
                }
                op::DOC_OK => break,
                op::ERR => return Err(remote_err(&frame.payload)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected opcode 0x{other:02x} during document"
                    )))
                }
            }
        }
        report.docs += 1;
        report.results += results.len() as u64;
        report.updates += updates.len() as u64;
        if opts.running {
            for (id, v) in &updates {
                writeln!(out, "# running[{di}:{id}]: {v}").map_err(ClientError::Io)?;
            }
        }
        for (id, v) in &results {
            writeln!(out, "{di}\t{id}\t{v}").map_err(ClientError::Io)?;
        }
    }

    if opts.want_stats {
        write_frame(&mut writer, op::STAT, &[])?;
        let frame = next(&mut writer)?;
        match frame.op {
            op::STAT_OK => {
                report.stats_json = Some(String::from_utf8_lossy(&frame.payload).into_owned());
            }
            op::ERR => return Err(remote_err(&frame.payload)),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected STAT_OK, got opcode 0x{other:02x}"
                )))
            }
        }
    }

    write_frame(&mut writer, op::BYE, &[])?;
    let frame = next(&mut writer)?;
    if frame.op != op::OK {
        return Err(ClientError::Protocol(format!(
            "expected OK for BYE, got opcode 0x{:02x}",
            frame.op
        )));
    }
    writer.flush()?;
    report.wire_in = wire_in.load(Ordering::Relaxed);
    report.wire_out = wire_out.load(Ordering::Relaxed);
    Ok(report)
}

/// Validate a SUB_OK reply and decode its bounds tail.
fn parse_sub_ok(reply: &Frame, expected: usize) -> Result<Vec<WireBound>, ClientError> {
    let count = match reply.op {
        op::SUB_OK => {
            if reply.payload.len() < 4 {
                return Err(ClientError::Protocol("short SUB_OK".into()));
            }
            u32::from_le_bytes(reply.payload[..4].try_into().unwrap())
        }
        op::ERR => return Err(remote_err(&reply.payload)),
        other => {
            return Err(ClientError::Protocol(format!(
                "expected SUB_OK, got opcode 0x{other:02x}"
            )))
        }
    };
    if count as usize != expected {
        return Err(ClientError::Protocol(format!(
            "subscribed {expected} queries, server acked {count}"
        )));
    }
    // ids then (on servers that compute them) one WireBound per query;
    // older servers simply end the payload after the ids.
    let tail = reply.payload.get(4 + 4 * count as usize..).unwrap_or(&[]);
    let mut bounds = Vec::new();
    if tail.len() == count as usize * WireBound::SIZE {
        for raw in tail.chunks_exact(WireBound::SIZE) {
            match WireBound::decode(raw) {
                Some(b) => bounds.push(b),
                None => {
                    return Err(ClientError::Protocol(
                        "malformed bound in SUB_OK tail".into(),
                    ))
                }
            }
        }
    }
    Ok(bounds)
}

/// Feeder settings for [`broadcast_feed`].
#[derive(Debug, Clone)]
pub struct FeedOptions {
    /// FEED chunk size in bytes.
    pub chunk: usize,
    /// Poll STAT until this many subscribers are attached before the
    /// first FEED (so a scripted fan-out starts only when the audience
    /// is seated).
    pub wait_subs: Option<u64>,
    /// Request STAT after the last document and carry it in the report.
    pub want_stats: bool,
}

impl Default for FeedOptions {
    fn default() -> Self {
        FeedOptions {
            chunk: 64 * 1024,
            wait_subs: None,
            want_stats: false,
        }
    }
}

/// How one broadcast feed went.
#[derive(Debug, Default)]
pub struct FeedReport {
    pub docs: usize,
    pub bytes: u64,
    pub stats_json: Option<String>,
    pub wire_in: u64,
    pub wire_out: u64,
}

/// Claim the feeder role on a broadcast server and push the corpus.
/// Every attached subscriber sees the stream through the shared index;
/// the feeder's own acks are global DOC_OK document numbers.
pub fn broadcast_feed(
    addr: &str,
    docs: &[impl AsRef<[u8]>],
    opts: &FeedOptions,
) -> Result<FeedReport, ClientError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let wire_in = Arc::new(AtomicU64::new(0));
    let wire_out = Arc::new(AtomicU64::new(0));
    let mut reader = BufReader::new(Counted {
        inner: stream.try_clone()?,
        n: Arc::clone(&wire_in),
    });
    let mut writer = BufWriter::new(Counted {
        inner: stream,
        n: Arc::clone(&wire_out),
    });
    let mut next = |writer: &mut BufWriter<Counted<TcpStream>>| -> Result<Frame, ClientError> {
        writer.flush()?;
        match read_frame(&mut reader, MAX_FRAME)? {
            Some(f) => Ok(f),
            None => Err(ClientError::Protocol(
                "server closed the connection mid-conversation".into(),
            )),
        }
    };

    write_frame(&mut writer, op::FEEDER, &[])?;
    let reply = next(&mut writer)?;
    match reply.op {
        op::OK => {}
        op::ERR => return Err(remote_err(&reply.payload)),
        other => {
            return Err(ClientError::Protocol(format!(
                "expected OK for FEEDER, got opcode 0x{other:02x}"
            )))
        }
    }

    if let Some(want) = opts.wait_subs {
        loop {
            write_frame(&mut writer, op::STAT, &[])?;
            let frame = next(&mut writer)?;
            match frame.op {
                op::STAT_OK => {
                    let json = String::from_utf8_lossy(&frame.payload).into_owned();
                    if stat_field_u64(&json, "subscribers").unwrap_or(0) >= want {
                        break;
                    }
                }
                op::ERR => return Err(remote_err(&frame.payload)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "expected STAT_OK, got opcode 0x{other:02x}"
                    )))
                }
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    let mut report = FeedReport::default();
    let chunk = opts.chunk.max(1);
    for (di, doc) in docs.iter().enumerate() {
        let doc = doc.as_ref();
        report.bytes += doc.len() as u64;
        for piece in doc.chunks(chunk) {
            write_frame(&mut writer, op::FEED, piece)?;
        }
        write_frame(&mut writer, op::END_DOC, &[])?;
        let frame = next(&mut writer)?;
        match frame.op {
            op::DOC_OK => {
                let acked = frame
                    .payload
                    .get(..4)
                    .map(|b| u32::from_le_bytes(b.try_into().unwrap()));
                if acked != Some(di as u32) {
                    return Err(ClientError::Protocol(format!(
                        "fed document {di}, server acked {acked:?}"
                    )));
                }
            }
            op::ERR => return Err(remote_err(&frame.payload)),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected DOC_OK, got opcode 0x{other:02x}"
                )))
            }
        }
        report.docs += 1;
    }

    if opts.want_stats {
        write_frame(&mut writer, op::STAT, &[])?;
        let frame = next(&mut writer)?;
        match frame.op {
            op::STAT_OK => {
                report.stats_json = Some(String::from_utf8_lossy(&frame.payload).into_owned());
            }
            op::ERR => return Err(remote_err(&frame.payload)),
            other => {
                return Err(ClientError::Protocol(format!(
                    "expected STAT_OK, got opcode 0x{other:02x}"
                )))
            }
        }
    }

    write_frame(&mut writer, op::BYE, &[])?;
    let frame = next(&mut writer)?;
    if frame.op != op::OK {
        return Err(ClientError::Protocol(format!(
            "expected OK for BYE, got opcode 0x{:02x}",
            frame.op
        )));
    }
    writer.flush()?;
    report.wire_in = wire_in.load(Ordering::Relaxed);
    report.wire_out = wire_out.load(Ordering::Relaxed);
    Ok(report)
}

/// Subscribe to a broadcast server and render `expect_docs` documents
/// of fan-out in exactly the [`run_corpus`] output format, so a
/// subscriber's output is byte-comparable to a solo corpus replay
/// (and to `xsq multi --shard 1`).
pub fn broadcast_subscribe(
    addr: &str,
    queries: &[&str],
    expect_docs: usize,
    running: bool,
    out: &mut impl Write,
) -> Result<ClientReport, ClientError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    let wire_in = Arc::new(AtomicU64::new(0));
    let wire_out = Arc::new(AtomicU64::new(0));
    let mut reader = BufReader::new(Counted {
        inner: stream.try_clone()?,
        n: Arc::clone(&wire_in),
    });
    let mut writer = BufWriter::new(Counted {
        inner: stream,
        n: Arc::clone(&wire_out),
    });
    let mut next = |writer: &mut BufWriter<Counted<TcpStream>>| -> Result<Frame, ClientError> {
        writer.flush()?;
        match read_frame(&mut reader, MAX_FRAME)? {
            Some(f) => Ok(f),
            None => Err(ClientError::Protocol(
                "server closed the connection mid-conversation".into(),
            )),
        }
    };

    write_frame(&mut writer, op::SUB, queries.join("\n").as_bytes())?;
    let reply = next(&mut writer)?;
    let bounds = parse_sub_ok(&reply, queries.len())?;
    let mut report = ClientReport {
        bounds,
        ..ClientReport::default()
    };

    // Passive from here: the feeder drives the stream; this side only
    // collects each document's frames and renders at DOC_OK, counting
    // documents from its own first boundary like a private session.
    while report.docs < expect_docs {
        let mut results: Vec<(u32, String)> = Vec::new();
        let mut updates: Vec<(u32, f64)> = Vec::new();
        loop {
            let frame = next(&mut writer)?;
            match frame.op {
                op::RESULT => {
                    if frame.payload.len() < 4 {
                        return Err(ClientError::Protocol("short RESULT".into()));
                    }
                    let id = u32::from_le_bytes(frame.payload[..4].try_into().unwrap());
                    let value = String::from_utf8_lossy(&frame.payload[4..]).into_owned();
                    results.push((id, value));
                }
                op::UPDATE => {
                    if frame.payload.len() != 12 {
                        return Err(ClientError::Protocol("short UPDATE".into()));
                    }
                    let id = u32::from_le_bytes(frame.payload[..4].try_into().unwrap());
                    let value = f64::from_le_bytes(frame.payload[4..].try_into().unwrap());
                    updates.push((id, value));
                }
                op::DOC_OK => break,
                op::ERR => return Err(remote_err(&frame.payload)),
                other => {
                    return Err(ClientError::Protocol(format!(
                        "unexpected opcode 0x{other:02x} during broadcast"
                    )))
                }
            }
        }
        let di = report.docs;
        report.docs += 1;
        report.results += results.len() as u64;
        report.updates += updates.len() as u64;
        if running {
            for (id, v) in &updates {
                writeln!(out, "# running[{di}:{id}]: {v}").map_err(ClientError::Io)?;
            }
        }
        for (id, v) in &results {
            writeln!(out, "{di}\t{id}\t{v}").map_err(ClientError::Io)?;
        }
    }

    write_frame(&mut writer, op::BYE, &[])?;
    let frame = next(&mut writer)?;
    if frame.op != op::OK {
        return Err(ClientError::Protocol(format!(
            "expected OK for BYE, got opcode 0x{:02x}",
            frame.op
        )));
    }
    writer.flush()?;
    report.wire_in = wire_in.load(Ordering::Relaxed);
    report.wire_out = wire_out.load(Ordering::Relaxed);
    Ok(report)
}

/// Render the corpus through the in-process sequential driver in the
/// exact format [`run_corpus`] prints — the byte-comparison oracle.
pub fn reference_output(
    engine: XsqEngine,
    queries: &[&str],
    docs: &[impl AsRef<[u8]>],
    running: bool,
) -> Result<String, String> {
    let set = QuerySet::compile(engine, queries)
        .map_err(|(i, e)| format!("query {} ({}): {e}", i + 1, queries[i]))?;
    let mut text = String::new();
    run_sequential_with(&set, docs, |di, out| {
        if running {
            for (id, v) in &out.updates {
                let _ = writeln!(text, "# running[{di}:{}]: {v}", id.0);
            }
        }
        for (id, v) in &out.results {
            let _ = writeln!(text, "{di}\t{}\t{v}", id.0);
        }
    })
    .map_err(|e| e.to_string())?;
    Ok(text)
}
