//! The TCP front end: serving-model dispatch, the threaded model, and
//! the state both models share.
//!
//! Two serving models sit behind the same wire contract:
//!
//! * **`eventloop`** (default on Unix) — a readiness-based loop in
//!   [`crate::eventloop`]: epoll/poll multiplexing, wire-v2 session
//!   multiplexing, and broadcast fan-out.
//! * **`threaded`** — the original model, kept selectable: `workers`
//!   accept threads share one nonblocking listener and each serves one
//!   connection at a time (the `shard.rs` fixed-pool pattern), with a
//!   dedicated writer thread per connection behind a *bounded* queue:
//!   when a client stops draining its socket the queue fills, the
//!   session blocks on the next reply, and the reader stops pulling
//!   frames — backpressure reaches the client as TCP flow control
//!   instead of unbounded server-side buffering.
//!
//! Both models share one [`xsq_core::PlanCache`] (identical SUB
//! batches compile once per server, not once per connection) and one
//! set of transport counters surfaced through STAT.
//!
//! Shutdown is a drain, not an abort: [`ServerHandle::shutdown`] stops
//! accepting, sessions that are *between* documents close with a
//! framed `shutting-down` error, and sessions with a document in
//! flight get [`DRAIN_GRACE`] to finish it before the connection
//! closes.

use std::io::{self, ErrorKind, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use xsq_core::{PlanCache, XsqEngine};

use crate::proto::{err_payload, errcode, frame_bytes, op, Frame, MAX_FRAME};
use crate::session::{Action, Outbox, Session, SessionLimits, TransportStats};

/// How often a blocked read wakes up to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);
/// How long an in-flight document may keep running after shutdown.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Which serving model `xsq serve` runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeModel {
    /// Readiness-based event loop (epoll / `poll(2)`): default where
    /// available. Supports wire-v2 multiplexing and broadcast.
    EventLoop,
    /// Thread-per-connection accept workers.
    Threaded,
}

impl ServeModel {
    /// The default model for this platform.
    pub fn platform_default() -> ServeModel {
        if cfg!(unix) {
            ServeModel::EventLoop
        } else {
            ServeModel::Threaded
        }
    }
}

/// What a broadcast server does when a subscriber's output queue is
/// full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BroadcastPolicy {
    /// Pause the feeder until every subscriber queue half-drains:
    /// lossless total broadcast, paced by the slowest subscriber.
    Block,
    /// Discard RESULT/UPDATE frames for the saturated subscriber and
    /// count them (`dropped_broadcast` in STAT). DOC_OK and control
    /// replies are never dropped, so the protocol stays consistent.
    Drop,
}

/// Broadcast-mode settings (`xsq serve --broadcast`).
#[derive(Debug, Clone, Copy)]
pub struct BroadcastOptions {
    /// Per-subscriber bounded output queue, in frames.
    pub queue: usize,
    pub policy: BroadcastPolicy,
}

impl Default for BroadcastOptions {
    fn default() -> Self {
        BroadcastOptions {
            queue: 1024,
            policy: BroadcastPolicy::Block,
        }
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 picks a free one).
    pub addr: String,
    /// Threaded model: accept-worker threads = maximum concurrent
    /// sessions. `0` means one per available CPU.
    pub workers: usize,
    /// Close a connection when no complete frame arrives within this
    /// window.
    pub idle_timeout: Duration,
    /// Per-frame size cap.
    pub max_frame: usize,
    /// Bounded reply-queue depth per connection (frames).
    pub queue_depth: usize,
    /// Engine every session compiles against.
    pub engine: XsqEngine,
    /// Admission policy: per-subscription static-bound budget and the
    /// DTD the bound analyzer proves it against (`--max-bound`/`--dtd`).
    pub limits: SessionLimits,
    /// Serving model; [`ServeModel::platform_default`] by default.
    pub model: ServeModel,
    /// Event-loop model: number of loop threads sharing the listener.
    pub loop_threads: usize,
    /// Broadcast mode (event-loop only): one feeder, shared index,
    /// fan-out to every subscriber.
    pub broadcast: Option<BroadcastOptions>,
}

impl ServeOptions {
    pub fn new(addr: impl Into<String>) -> ServeOptions {
        ServeOptions {
            addr: addr.into(),
            workers: 0,
            idle_timeout: Duration::from_secs(30),
            max_frame: MAX_FRAME,
            queue_depth: 256,
            engine: XsqEngine::full(),
            limits: SessionLimits::default(),
            model: ServeModel::platform_default(),
            loop_threads: 1,
            broadcast: None,
        }
    }

    fn resolve_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// State both serving models share: the cross-connection compiled-plan
/// cache and the transport counters STAT surfaces.
pub(crate) struct Shared {
    pub cache: Arc<PlanCache>,
    pub shutdown: Arc<AtomicBool>,
    pub connections: AtomicU64,
    pub sessions: AtomicU64,
    pub queue_hwm: AtomicU64,
    pub dropped: AtomicU64,
}

impl Shared {
    fn new(opts: &ServeOptions, shutdown: Arc<AtomicBool>) -> Shared {
        Shared {
            // The cache must share the admission DTD so cached bounds
            // equal what a private compilation would compute.
            cache: PlanCache::new(opts.limits.dtd.clone()),
            shutdown,
            connections: AtomicU64::new(0),
            sessions: AtomicU64::new(0),
            queue_hwm: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] leaves the threads serving until the
/// process exits.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight sessions, join the workers.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Bind and start serving in background threads.
pub fn serve(opts: ServeOptions) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&opts.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let shared = Arc::new(Shared::new(&opts, Arc::clone(&shutdown)));

    let model = effective_model(&opts);
    let threads = match model {
        #[cfg(unix)]
        ServeModel::EventLoop => crate::eventloop::spawn(listener, opts, shared)?,
        #[cfg(not(unix))]
        ServeModel::EventLoop => unreachable!("effective_model falls back to Threaded"),
        ServeModel::Threaded => spawn_threaded(listener, opts, shared)?,
    };
    Ok(ServerHandle {
        addr,
        shutdown,
        threads,
    })
}

/// Resolve the model the platform can actually run. Broadcast requires
/// the event loop; non-Unix platforms only have the threaded model.
fn effective_model(opts: &ServeOptions) -> ServeModel {
    if !cfg!(unix) {
        return ServeModel::Threaded;
    }
    if opts.broadcast.is_some() {
        return ServeModel::EventLoop;
    }
    opts.model
}

fn spawn_threaded(
    listener: TcpListener,
    opts: ServeOptions,
    shared: Arc<Shared>,
) -> io::Result<Vec<JoinHandle<()>>> {
    let workers = opts.resolve_workers();
    let mut threads = Vec::with_capacity(workers);
    for i in 0..workers {
        let listener = listener.try_clone()?;
        let opts = opts.clone();
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("xsq-serve-{i}"))
                .spawn(move || accept_loop(listener, &opts, &shared))
                .expect("spawn accept worker"),
        );
    }
    Ok(threads)
}

fn accept_loop(listener: TcpListener, opts: &ServeOptions, shared: &Shared) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Connection-level errors (peer vanished, io failures)
                // only end this connection, never the worker.
                let _ = handle_connection(stream, opts, shared);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(POLL_INTERVAL.min(Duration::from_millis(20)));
            }
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
}

/// Reply queue entry: an encoded frame for the writer thread.
type WriteQueue = SyncSender<Vec<u8>>;

/// Session-side end of the reply queue. `send` blocks when the queue
/// is full — that block *is* the backpressure. A dead writer (client
/// gone) flips `dead` so the session loop can stop early.
struct QueueOutbox {
    tx: WriteQueue,
    dead: bool,
}

impl Outbox for QueueOutbox {
    fn send(&mut self, op: u8, payload: &[u8]) {
        if self.dead {
            return;
        }
        if self.tx.send(frame_bytes(op, payload)).is_err() {
            self.dead = true;
        }
    }
}

/// What the frame pump observed.
enum ReadOutcome {
    Frame(Frame),
    /// Clean EOF at a frame boundary.
    Eof,
    /// No complete frame within the idle window.
    Idle,
    /// Shutdown flag seen while waiting at a frame boundary.
    Drain,
    /// Declared frame length over the cap (we must not read the body).
    TooLarge(u64),
}

/// Decrements the shared connection/session gauges on every exit path.
struct ConnGuard<'a>(&'a Shared);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.connections.fetch_sub(1, Ordering::SeqCst);
        self.0.sessions.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(
    mut stream: TcpStream,
    opts: &ServeOptions,
    shared: &Shared,
) -> io::Result<()> {
    let shutdown = &*shared.shutdown;
    // One connection is one logical session in the threaded model.
    shared.connections.fetch_add(1, Ordering::SeqCst);
    shared.sessions.fetch_add(1, Ordering::SeqCst);
    let _guard = ConnGuard(shared);
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    let write_half = stream.try_clone()?;
    let (tx, rx) = sync_channel::<Vec<u8>>(opts.queue_depth.max(1));
    let writer = std::thread::Builder::new()
        .name("xsq-serve-writer".into())
        .spawn(move || {
            use std::io::Write;
            let mut w = std::io::BufWriter::new(write_half);
            while let Ok(buf) = rx.recv() {
                if w.write_all(&buf).is_err() {
                    return;
                }
                // Coalesce whatever is already queued, then flush so
                // streamed results are visible without waiting for
                // END-DOC.
                while let Ok(more) = rx.try_recv() {
                    if w.write_all(&more).is_err() {
                        return;
                    }
                }
                if w.flush().is_err() {
                    return;
                }
            }
            let _ = w.flush();
        })
        .expect("spawn writer");

    let mut session = Session::with_limits(opts.engine, opts.limits.clone());
    session.set_plan_cache(Arc::clone(&shared.cache));
    let mut out = QueueOutbox { tx, dead: false };
    let mut drain_deadline: Option<Instant> = None;
    loop {
        let outcome = read_frame_poll(&mut stream, opts, shutdown, drain_deadline)?;
        match outcome {
            ReadOutcome::Frame(frame) => {
                if frame.op == op::STAT {
                    // Refresh the transport view STAT reports just
                    // before the session renders it.
                    session.set_transport(TransportStats {
                        model: "threaded",
                        connections: shared.connections.load(Ordering::SeqCst),
                        sessions: shared.sessions.load(Ordering::SeqCst),
                        // The writer-thread queue has no depth probe;
                        // the event loop reports a real high-water mark.
                        queue_depth_hwm: 0,
                        dropped_broadcast: shared.dropped.load(Ordering::SeqCst),
                    });
                }
                if session.handle_frame(&frame, &mut out) == Action::Close || out.dead {
                    break;
                }
                if let Some(deadline) = drain_deadline {
                    if !session.doc_active() || Instant::now() >= deadline {
                        out.send(
                            op::ERR,
                            &err_payload(errcode::SHUTTING_DOWN, "server is draining", &[]),
                        );
                        break;
                    }
                }
            }
            ReadOutcome::Eof => break,
            ReadOutcome::Idle => {
                out.send(
                    op::ERR,
                    &err_payload(
                        errcode::IDLE_TIMEOUT,
                        &format!("no frame within {:.0}s", opts.idle_timeout.as_secs_f64()),
                        &[],
                    ),
                );
                break;
            }
            ReadOutcome::Drain => {
                if session.doc_active() && drain_deadline.is_none() {
                    // Let the in-flight document finish within the
                    // grace window.
                    drain_deadline = Some(Instant::now() + DRAIN_GRACE);
                    continue;
                }
                if session.doc_active() {
                    // Still draining; keep polling until grace expires.
                    if Instant::now() < drain_deadline.unwrap() {
                        continue;
                    }
                }
                out.send(
                    op::ERR,
                    &err_payload(errcode::SHUTTING_DOWN, "server is draining", &[]),
                );
                break;
            }
            ReadOutcome::TooLarge(len) => {
                out.send(
                    op::ERR,
                    &err_payload(
                        errcode::TOO_LARGE,
                        &format!(
                            "frame of {len} bytes exceeds the {}-byte limit",
                            opts.max_frame
                        ),
                        &[],
                    ),
                );
                break;
            }
        }
    }
    drop(out);
    let _ = writer.join();
    let _ = stream.shutdown(std::net::Shutdown::Both);
    Ok(())
}

/// Read one frame, waking every [`POLL_INTERVAL`] to check the
/// shutdown flag and the idle clock. Timeouts *inside* a frame do not
/// reset the idle clock — a client that dribbles a torn frame forever
/// still gets disconnected.
fn read_frame_poll(
    stream: &mut TcpStream,
    opts: &ServeOptions,
    shutdown: &AtomicBool,
    draining: Option<Instant>,
) -> io::Result<ReadOutcome> {
    let start = Instant::now();
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match stream.read(&mut header[got..]) {
            Ok(0) => {
                return if got == 0 {
                    Ok(ReadOutcome::Eof)
                } else {
                    Err(io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "connection closed inside a frame header",
                    ))
                }
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if got == 0 && draining.is_none() && shutdown.load(Ordering::SeqCst) {
                    return Ok(ReadOutcome::Drain);
                }
                if let Some(deadline) = draining {
                    if Instant::now() >= deadline {
                        return Ok(ReadOutcome::Drain);
                    }
                }
                if start.elapsed() >= opts.idle_timeout {
                    return Ok(ReadOutcome::Idle);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 {
        return Err(io::Error::new(ErrorKind::InvalidData, "zero-length frame"));
    }
    if len > opts.max_frame {
        return Ok(ReadOutcome::TooLarge(len as u64));
    }
    let mut body = vec![0u8; len];
    let mut filled = 0usize;
    while filled < len {
        match stream.read(&mut body[filled..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "connection closed inside a frame body",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if start.elapsed() >= opts.idle_timeout {
                    return Err(io::Error::new(
                        ErrorKind::TimedOut,
                        "frame body stalled past the idle window",
                    ));
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let frame_op = body[0];
    body.copy_within(1.., 0);
    body.truncate(len - 1);
    Ok(ReadOutcome::Frame(Frame {
        op: frame_op,
        payload: body,
    }))
}
