//! The readiness-based serving model: one thread (optionally sharded
//! to `--loop-threads N`) multiplexes every connection over an epoll
//! (or `poll(2)`) readiness loop instead of parking a thread pair per
//! connection.
//!
//! The threaded model burns two OS threads per connection (reader +
//! writer) and caps concurrency at the worker count; this loop holds
//! thousands of mostly-idle subscriber connections at a fixed thread
//! cost, which is what broadcast fan-out needs. The protocol machine
//! is unchanged — the same [`Session`] state machine the threaded
//! server drives blockingly is driven here by readiness:
//!
//! * **Reads** land in a per-connection [`conn::FrameBuf`]; complete
//!   frames dispatch immediately, partial frames wait for more bytes.
//! * **Writes** stage into a per-connection [`conn::WriteBuf`] and
//!   flush as far as the socket allows; `EPOLLOUT` interest exists
//!   only while the queue is non-empty. A queue deeper than the serve
//!   option's `queue_depth` pauses *reading* that connection — the
//!   same backpressure the threaded model's bounded channel applies.
//! * **Wire v2 multiplexing**: a connection that opens with HELLO ≥ 2
//!   prefixes every later frame with a `u32` logical-session id and
//!   may run many [`Session`]s over one socket. A fatal error in one
//!   logical session (parse failure, unknown opcode) closes that
//!   session only; framing-level faults (oversized frame, zero-length
//!   frame) still close the connection, because the byte stream itself
//!   is no longer trustworthy.
//! * **Broadcast**: with `--broadcast` the loop hosts a
//!   [`broadcast::Hub`] — one feeder, one shared index, fan-out to
//!   every subscriber (see that module's identity contract).
//!
//! Timers (idle timeout, shutdown drain grace, flush grace on closing
//! connections) ride the 100 ms poll tick, mirroring the threaded
//! model's `POLL_INTERVAL` wakeups.

pub mod broadcast;
pub mod conn;
pub mod poller;

use std::collections::HashMap;
use std::io::{self, ErrorKind, Read};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::proto::{
    err_payload, errcode, frame_bytes, op, Frame, CONTROL_SESSION, WIRE_V1, WIRE_V2,
};
use crate::server::{BroadcastPolicy, ServeOptions, Shared};
use crate::session::{Action, Session, TransportStats};

use broadcast::{reply_frame, Hub};
use conn::{FrameBuf, FrameError, WriteBuf};
use poller::{PollEvent, Poller};

/// The listener's poller token; connections start at 1 and never reuse
/// a token, so a stale event can never address a new connection.
const LISTENER: u64 = 0;
/// Poll tick: granularity of idle/drain timers (the threaded model's
/// `POLL_INTERVAL`).
const TICK: Duration = Duration::from_millis(100);
/// How long an in-flight document (or an unflushed close) may linger
/// after shutdown begins.
const DRAIN_GRACE: Duration = Duration::from_secs(5);
/// Socket read chunk and the per-wakeup read budget — one connection
/// cannot starve the loop; level-triggered readiness re-reports
/// whatever is left.
const READ_CHUNK: usize = 64 * 1024;
const READS_PER_WAKE: usize = 8;

/// Spawn the event-loop threads for an already-bound listener.
pub(crate) fn spawn(
    listener: TcpListener,
    opts: ServeOptions,
    shared: Arc<Shared>,
) -> io::Result<Vec<JoinHandle<()>>> {
    // Broadcast needs every connection on one loop (the hub is
    // single-threaded state); otherwise shard by listener clone.
    let loops = if opts.broadcast.is_some() {
        1
    } else {
        opts.loop_threads.max(1)
    };
    let mut threads = Vec::with_capacity(loops);
    for i in 0..loops {
        let listener = listener.try_clone()?;
        let opts = opts.clone();
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("xsq-loop-{i}"))
                .spawn(move || match EventLoop::new(listener, opts, shared) {
                    Ok(el) => el.run(),
                    Err(e) => eprintln!("xsq serve: event loop failed to start: {e}"),
                })
                .expect("spawn event loop"),
        );
    }
    Ok(threads)
}

/// One connection's loop-side state.
struct Conn {
    stream: TcpStream,
    fd: RawFd,
    frames: FrameBuf,
    write: WriteBuf,
    /// Negotiated wire version; v1 until a leading HELLO says v2.
    version: u32,
    saw_frame: bool,
    /// The wire-v1 session (one per connection, created lazily).
    legacy: Option<Session>,
    /// Wire-v2 logical sessions by session id.
    sessions: HashMap<u32, Session>,
    /// Completion time of the last decoded frame (the idle clock; a
    /// dribbled partial frame does not reset it).
    last_frame: Instant,
    /// Flush the write queue, then close.
    closing: bool,
    eof: bool,
    /// Reads paused because the write queue passed `queue_depth`.
    backpressured: bool,
    /// Reads paused by the broadcast block policy (feeder only).
    feeder_paused: bool,
    /// Currently registered poller interest.
    int_read: bool,
    int_write: bool,
    /// Shutdown drain: deadline for an in-flight document.
    drain_deadline: Option<Instant>,
    /// Flush grace once `closing`: force-drop past this.
    close_deadline: Option<Instant>,
}

impl Conn {
    fn new(stream: TcpStream, fd: RawFd, max_frame: usize) -> Conn {
        Conn {
            stream,
            fd,
            frames: FrameBuf::new(max_frame),
            write: WriteBuf::new(),
            version: WIRE_V1,
            saw_frame: false,
            legacy: None,
            sessions: HashMap::new(),
            last_frame: Instant::now(),
            closing: false,
            eof: false,
            backpressured: false,
            feeder_paused: false,
            int_read: true,
            int_write: false,
            drain_deadline: None,
            close_deadline: None,
        }
    }

    fn live_sessions(&self) -> u64 {
        u64::from(self.legacy.is_some()) + self.sessions.len() as u64
    }

    /// Connection-level replies respect the negotiated framing: wire
    /// v2 prefixes the reserved control-session id.
    fn ctl_sid(&self) -> Option<u32> {
        (self.version >= WIRE_V2).then_some(CONTROL_SESSION)
    }

    fn stage_reply(&mut self, sid: Option<u32>, opcode: u8, payload: &[u8]) {
        self.write.push(Arc::new(reply_frame(sid, opcode, payload)));
    }

    fn stage_err(&mut self, code: &str, message: &str) {
        let sid = self.ctl_sid();
        self.stage_reply(sid, op::ERR, &err_payload(code, message, &[]));
    }
}

struct EventLoop {
    poller: Poller,
    listener: Option<TcpListener>,
    opts: ServeOptions,
    shared: Arc<Shared>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    hub: Option<Hub>,
    events: Vec<PollEvent>,
    scratch: Vec<u8>,
}

impl EventLoop {
    fn new(
        listener: TcpListener,
        opts: ServeOptions,
        shared: Arc<Shared>,
    ) -> io::Result<EventLoop> {
        listener.set_nonblocking(true)?;
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), LISTENER, true, false)?;
        let hub = opts
            .broadcast
            .map(|_| Hub::new(opts.engine, opts.limits.clone(), Arc::clone(&shared.cache)));
        Ok(EventLoop {
            poller,
            listener: Some(listener),
            opts,
            shared,
            conns: HashMap::new(),
            next_token: 1,
            hub,
            events: Vec::new(),
            scratch: vec![0u8; READ_CHUNK],
        })
    }

    fn run(mut self) {
        let mut last_sweep = Instant::now();
        loop {
            let mut events = std::mem::take(&mut self.events);
            if self.poller.wait(&mut events, TICK).is_err() {
                std::thread::sleep(TICK);
            }
            for &ev in &events {
                if ev.token == LISTENER {
                    self.accept_ready();
                } else {
                    self.conn_ready(ev.token, ev.readable, ev.writable, ev.hangup);
                }
            }
            self.events = events;
            // The sweep walks every connection; under load the poller
            // wakes far more often than the timers it services need.
            if last_sweep.elapsed() >= TICK || self.shared.shutdown.load(Ordering::SeqCst) {
                self.sweep();
                last_sweep = Instant::now();
            }
            if self.shared.shutdown.load(Ordering::SeqCst)
                && self.listener.is_none()
                && self.conns.is_empty()
            {
                return;
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    let fd = stream.as_raw_fd();
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.poller.register(fd, token, true, false).is_err() {
                        continue;
                    }
                    self.shared.connections.fetch_add(1, Ordering::Relaxed);
                    self.conns
                        .insert(token, Conn::new(stream, fd, self.opts.max_frame));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }

    fn conn_ready(&mut self, token: u64, readable: bool, writable: bool, hangup: bool) {
        // Take the connection out of the map for the duration: frame
        // handling may fan frames to *other* connections (broadcast),
        // and this keeps those borrows disjoint.
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let mut dead = false;
        if writable && conn.write.flush_into(&mut conn.stream).is_err() {
            dead = true;
        }
        if !dead && (readable || hangup) {
            dead = self.read_and_process(token, &mut conn);
        }
        if self.hub.is_some() {
            self.pump_staged(Some((token, &mut conn)));
        }
        if !dead {
            dead = self.finish_io(token, &mut conn);
        }
        if dead {
            self.teardown(token, conn);
        } else {
            self.conns.insert(token, conn);
        }
    }

    /// Read until the socket would block (bounded per wakeup) and
    /// dispatch every complete frame as it decodes. Returns `true`
    /// when the connection is dead (io error, poisoned framing).
    fn read_and_process(&mut self, token: u64, conn: &mut Conn) -> bool {
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut dead = false;
        for _ in 0..READS_PER_WAKE {
            if conn.closing || conn.backpressured || conn.feeder_paused || conn.eof {
                break;
            }
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    // EOF: flush whatever replies are queued, then
                    // close. A partial frame left in the buffer is the
                    // peer's torn write — nothing to answer.
                    conn.eof = true;
                    conn.closing = true;
                    break;
                }
                Ok(n) => {
                    conn.frames.extend(&scratch[..n]);
                    if self.process_frames(token, conn) {
                        dead = true;
                        break;
                    }
                    if conn.write.len() > self.opts.queue_depth {
                        break; // finish_io will pause reads
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        self.scratch = scratch;
        dead
    }

    fn process_frames(&mut self, token: u64, conn: &mut Conn) -> bool {
        loop {
            if conn.closing {
                return false;
            }
            match conn.frames.next_frame() {
                Ok(Some(frame)) => self.dispatch(token, conn, frame),
                Ok(None) => return false,
                Err(FrameError::TooLarge(len)) => {
                    conn.stage_err(
                        errcode::TOO_LARGE,
                        &format!(
                            "frame of {len} bytes exceeds the {}-byte limit",
                            self.opts.max_frame
                        ),
                    );
                    conn.closing = true;
                    return false;
                }
                // Zero-length frame: abrupt close with no reply, the
                // same as the threaded model's framing error path.
                Err(FrameError::Zero) => return true,
            }
        }
    }

    fn dispatch(&mut self, token: u64, conn: &mut Conn, frame: Frame) {
        conn.last_frame = Instant::now();
        if frame.op == op::HELLO {
            if conn.saw_frame {
                conn.stage_err(
                    errcode::PROTOCOL,
                    "HELLO must be the first frame on a connection",
                );
                return;
            }
            conn.saw_frame = true;
            let Ok(bytes) = <[u8; 4]>::try_from(frame.payload.as_slice()) else {
                conn.stage_err(errcode::PROTOCOL, "HELLO payload must be a u32 version");
                conn.closing = true;
                return;
            };
            let client = u32::from_le_bytes(bytes);
            conn.version = client.clamp(WIRE_V1, WIRE_V2);
            // The negotiation reply itself is never session-prefixed.
            conn.write.push(Arc::new(frame_bytes(
                op::HELLO_OK,
                &conn.version.to_le_bytes(),
            )));
            return;
        }
        conn.saw_frame = true;
        if self.hub.is_some() {
            self.dispatch_broadcast(token, conn, &frame);
        } else if frame.op == op::FEEDER {
            conn.stage_err(
                errcode::BROADCAST_ROLE,
                "this server is not in broadcast mode",
            );
        } else if conn.version >= WIRE_V2 {
            self.dispatch_v2(token, conn, &frame);
        } else {
            self.dispatch_v1(conn, &frame);
        }
    }

    /// Wire v1: the whole connection is one session, exactly the
    /// threaded model's semantics (`Action::Close` closes the socket).
    fn dispatch_v1(&mut self, conn: &mut Conn, frame: &Frame) {
        if conn.legacy.is_none() {
            let mut s = Session::with_limits(self.opts.engine, self.opts.limits.clone());
            s.set_plan_cache(Arc::clone(&self.shared.cache));
            conn.legacy = Some(s);
            self.shared.sessions.fetch_add(1, Ordering::Relaxed);
        }
        let transport = self.transport(conn.write.depth_hwm());
        let session = conn.legacy.as_mut().expect("legacy session");
        if frame.op == op::STAT {
            session.set_transport(transport);
        }
        let mut staged: Vec<Vec<u8>> = Vec::new();
        let mut out = |opcode: u8, payload: &[u8]| staged.push(frame_bytes(opcode, payload));
        let action = session.handle_frame(frame, &mut out);
        for bytes in staged {
            conn.write.push(Arc::new(bytes));
        }
        if action == Action::Close {
            conn.closing = true;
        }
    }

    /// Wire v2: route by the leading session id. Fatal session errors
    /// close only that logical session; sibling sessions on the same
    /// connection keep running.
    fn dispatch_v2(&mut self, token: u64, conn: &mut Conn, frame: &Frame) {
        let _ = token;
        if frame.payload.len() < 4 {
            conn.stage_err(
                errcode::PROTOCOL,
                "wire v2 frames begin with a u32 session id",
            );
            return;
        }
        let sid = u32::from_le_bytes(frame.payload[..4].try_into().unwrap());
        if sid == CONTROL_SESSION {
            match frame.op {
                op::STAT => {
                    let json = self.server_stat_json(conn);
                    conn.stage_reply(Some(CONTROL_SESSION), op::STAT_OK, json.as_bytes());
                }
                op::BYE => {
                    conn.stage_reply(Some(CONTROL_SESSION), op::OK, &[op::BYE]);
                    conn.closing = true;
                }
                _ => conn.stage_err(
                    errcode::PROTOCOL,
                    "only STAT and BYE may address the control session",
                ),
            }
            return;
        }
        let inner = Frame {
            op: frame.op,
            payload: frame.payload[4..].to_vec(),
        };
        if let std::collections::hash_map::Entry::Vacant(slot) = conn.sessions.entry(sid) {
            if inner.op == op::SUB {
                // A logical session opens with its first SUB.
                let mut s = Session::with_limits(self.opts.engine, self.opts.limits.clone());
                s.set_plan_cache(Arc::clone(&self.shared.cache));
                slot.insert(s);
                self.shared.sessions.fetch_add(1, Ordering::Relaxed);
            } else {
                conn.stage_reply(
                    Some(sid),
                    op::ERR,
                    &err_payload(
                        errcode::BAD_SESSION,
                        &format!("session {sid} is not open (a session opens with its first SUB)"),
                        &[],
                    ),
                );
                return;
            }
        }
        let transport = self.transport(conn.write.depth_hwm());
        let session = conn.sessions.get_mut(&sid).expect("routed session");
        if inner.op == op::STAT {
            session.set_transport(transport);
        }
        let mut staged: Vec<Vec<u8>> = Vec::new();
        let mut out =
            |opcode: u8, payload: &[u8]| staged.push(reply_frame(Some(sid), opcode, payload));
        let action = session.handle_frame(&inner, &mut out);
        for bytes in staged {
            conn.write.push(Arc::new(bytes));
        }
        if action == Action::Close {
            conn.sessions.remove(&sid);
            self.shared.sessions.fetch_sub(1, Ordering::Relaxed);
        }
    }

    fn dispatch_broadcast(&mut self, token: u64, conn: &mut Conn, frame: &Frame) {
        let transport = self.transport(conn.write.depth_hwm());
        let backend = self.poller.backend_name();
        let (sid, inner): (Option<u32>, Frame) = if conn.version >= WIRE_V2 {
            if frame.payload.len() < 4 {
                conn.stage_err(
                    errcode::PROTOCOL,
                    "wire v2 frames begin with a u32 session id",
                );
                return;
            }
            let sid = u32::from_le_bytes(frame.payload[..4].try_into().unwrap());
            let inner = Frame {
                op: frame.op,
                payload: frame.payload[4..].to_vec(),
            };
            if sid == CONTROL_SESSION && frame.op == op::SUB {
                conn.stage_err(errcode::PROTOCOL, "SUB must address a real session id");
                return;
            }
            if sid != CONTROL_SESSION && frame.op == op::BYE {
                // Session-scoped BYE: detach this logical subscriber,
                // keep the connection.
                let hub = self.hub.as_mut().expect("broadcast hub");
                if hub.session_closed(token, sid) {
                    conn.stage_reply(Some(sid), op::OK, &[op::BYE]);
                } else {
                    conn.stage_reply(
                        Some(sid),
                        op::ERR,
                        &err_payload(
                            errcode::BAD_SESSION,
                            &format!("session {sid} is not open"),
                            &[],
                        ),
                    );
                }
                return;
            }
            (Some(sid), inner)
        } else {
            (None, frame.clone())
        };
        let hub = self.hub.as_mut().expect("broadcast hub");
        hub.dispatch(token, sid, &inner, &transport, backend);
    }

    /// Drain the hub's staged fan-out into connection write queues,
    /// applying the overflow policy, then apply staged closes. `cur`
    /// is the connection currently checked out of the map, if any.
    fn pump_staged(&mut self, cur: Option<(u64, &mut Conn)>) {
        let (cur_token, mut cur_conn): (Option<u64>, Option<&mut Conn>) = match cur {
            Some((t, c)) => (Some(t), Some(c)),
            None => (None, None),
        };
        let Some(hub) = self.hub.as_mut() else { return };
        let out = std::mem::take(&mut hub.out);
        let closes = std::mem::take(&mut hub.closes);
        let bopts = self.opts.broadcast.expect("broadcast options");
        let cap = bopts.queue.max(1);
        let mut touched: Vec<u64> = Vec::new();
        for (t, bytes) in out {
            let target: &mut Conn = if Some(t) == cur_token {
                cur_conn.as_deref_mut().expect("current connection")
            } else {
                match self.conns.get_mut(&t) {
                    Some(c) => {
                        touched.push(t);
                        c
                    }
                    None => continue,
                }
            };
            // Drop policy sheds only result traffic: control replies
            // and DOC_OK document boundaries always get through, so a
            // lossy subscriber still sees a consistent protocol.
            let opcode = bytes[4];
            let droppable = opcode == op::RESULT || opcode == op::UPDATE;
            if bopts.policy == BroadcastPolicy::Drop && droppable && target.write.len() >= cap {
                self.shared.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            target.write.push(bytes);
        }
        for t in closes {
            if Some(t) == cur_token {
                cur_conn.as_deref_mut().expect("current connection").closing = true;
            } else if let Some(c) = self.conns.get_mut(&t) {
                c.closing = true;
                touched.push(t);
            }
        }
        // Side-affected connections need their flush/interest state
        // refreshed now — their own readiness event may never come.
        touched.sort_unstable();
        touched.dedup();
        for t in touched {
            if let Some(mut c) = self.conns.remove(&t) {
                if self.finish_io(t, &mut c) {
                    self.teardown(t, c);
                } else {
                    self.conns.insert(t, c);
                }
            }
        }
        self.update_feeder_pause(cur_token, cur_conn);
    }

    /// Block policy: pause the feeder's reads while any subscriber
    /// queue is over the bound; resume once all are half-drained.
    fn update_feeder_pause(&mut self, cur_token: Option<u64>, mut cur_conn: Option<&mut Conn>) {
        let Some(bopts) = self.opts.broadcast else {
            return;
        };
        if bopts.policy != BroadcastPolicy::Block {
            return;
        }
        let Some(ft) = self.hub.as_ref().and_then(|h| h.feeder_token()) else {
            return;
        };
        let cap = bopts.queue.max(1);
        let mut over = false;
        let mut busy = false;
        for (t, c) in &self.conns {
            if *t == ft {
                continue;
            }
            let depth = c.write.len();
            over |= depth >= cap;
            busy |= depth > cap / 2;
        }
        if let (Some(t), Some(c)) = (cur_token, cur_conn.as_deref_mut()) {
            if t != ft {
                let depth = c.write.len();
                over |= depth >= cap;
                busy |= depth > cap / 2;
            }
        }
        if cur_token == Some(ft) {
            let f = cur_conn.expect("current connection");
            if f.feeder_paused {
                if !busy {
                    f.feeder_paused = false;
                }
            } else if over {
                f.feeder_paused = true;
            }
            // The caller's finish_io applies the interest change.
        } else if let Some(mut f) = self.conns.remove(&ft) {
            let was = f.feeder_paused;
            if f.feeder_paused {
                if !busy {
                    f.feeder_paused = false;
                }
            } else if over {
                f.feeder_paused = true;
            }
            let dead = if f.feeder_paused != was {
                self.finish_io(ft, &mut f)
            } else {
                false
            };
            if dead {
                self.teardown(ft, f);
            } else {
                self.conns.insert(ft, f);
            }
        }
    }

    /// Flush, refresh poller interest, settle backpressure. Returns
    /// `true` when the connection should be torn down.
    fn finish_io(&mut self, token: u64, conn: &mut Conn) -> bool {
        if !conn.write.is_empty() && conn.write.flush_into(&mut conn.stream).is_err() {
            return true;
        }
        self.shared
            .queue_hwm
            .fetch_max(conn.write.depth_hwm(), Ordering::Relaxed);
        let depth = conn.write.len();
        if conn.backpressured {
            if depth <= self.opts.queue_depth / 2 {
                conn.backpressured = false;
            }
        } else if depth > self.opts.queue_depth {
            conn.backpressured = true;
        }
        if conn.closing {
            if conn.write.is_empty() {
                return true;
            }
            if conn.close_deadline.is_none() {
                conn.close_deadline = Some(Instant::now() + DRAIN_GRACE);
            }
        }
        let want_r = !conn.closing && !conn.eof && !conn.backpressured && !conn.feeder_paused;
        let want_w = !conn.write.is_empty();
        if (want_r, want_w) != (conn.int_read, conn.int_write) {
            if self.poller.modify(conn.fd, token, want_r, want_w).is_err() {
                return true;
            }
            conn.int_read = want_r;
            conn.int_write = want_w;
        }
        false
    }

    fn teardown(&mut self, token: u64, conn: Conn) {
        let _ = self.poller.deregister(conn.fd);
        let _ = conn.stream.shutdown(Shutdown::Both);
        self.shared.connections.fetch_sub(1, Ordering::Relaxed);
        let live = conn.live_sessions();
        if live > 0 {
            self.shared.sessions.fetch_sub(live, Ordering::Relaxed);
        }
        self.shared
            .queue_hwm
            .fetch_max(conn.write.depth_hwm(), Ordering::Relaxed);
        drop(conn);
        if self.hub.is_some() {
            // The hub may stage frames (feeder loss fans an error to
            // every subscriber) — pump them through.
            self.hub.as_mut().expect("broadcast hub").conn_closed(token);
            self.pump_staged(None);
        }
    }

    /// Timer tick: idle timeouts, shutdown drain, closing-flush grace.
    fn sweep(&mut self) {
        let now = Instant::now();
        let shutting = self.shared.shutdown.load(Ordering::SeqCst);
        if shutting {
            if let Some(l) = self.listener.take() {
                let _ = self.poller.deregister(l.as_raw_fd());
                drop(l);
            }
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for t in tokens {
            let Some(mut c) = self.conns.remove(&t) else {
                continue;
            };
            let mut dead = false;
            if !c.closing {
                // A read paused by backpressure or the block policy is
                // the server's own doing — the idle clock does not run
                // against the client then (the threaded model's clock
                // also stops while its bounded queue blocks).
                let paused = c.backpressured || c.feeder_paused;
                if !paused && now.duration_since(c.last_frame) >= self.opts.idle_timeout {
                    c.stage_err(
                        errcode::IDLE_TIMEOUT,
                        &format!(
                            "no frame within {:.0}s",
                            self.opts.idle_timeout.as_secs_f64()
                        ),
                    );
                    c.closing = true;
                } else if shutting {
                    let active = self.conn_doc_active(t, &c);
                    match c.drain_deadline {
                        None if !active => {
                            c.stage_err(errcode::SHUTTING_DOWN, "server is draining");
                            c.closing = true;
                        }
                        None => c.drain_deadline = Some(now + DRAIN_GRACE),
                        Some(d) if !active || now >= d => {
                            c.stage_err(errcode::SHUTTING_DOWN, "server is draining");
                            c.closing = true;
                        }
                        Some(_) => {}
                    }
                }
            }
            if let Some(d) = c.close_deadline {
                if now >= d {
                    dead = true;
                }
            }
            if !dead {
                dead = self.finish_io(t, &mut c);
            }
            if dead {
                self.teardown(t, c);
            } else {
                self.conns.insert(t, c);
            }
        }
        self.update_feeder_pause(None, None);
    }

    fn conn_doc_active(&self, token: u64, c: &Conn) -> bool {
        if let Some(hub) = &self.hub {
            return hub.doc_active() && hub.feeder_token() == Some(token);
        }
        c.legacy.as_ref().is_some_and(|s| s.doc_active())
            || c.sessions.values().any(|s| s.doc_active())
    }

    fn transport(&self, conn_hwm: u64) -> TransportStats {
        TransportStats {
            model: if self.hub.is_some() {
                "broadcast"
            } else {
                "eventloop"
            },
            connections: self.shared.connections.load(Ordering::Relaxed),
            sessions: self.shared.sessions.load(Ordering::Relaxed),
            queue_depth_hwm: self.shared.queue_hwm.load(Ordering::Relaxed).max(conn_hwm),
            dropped_broadcast: self.shared.dropped.load(Ordering::Relaxed),
        }
    }

    /// The control-session STAT reply: server-wide counters (no
    /// logical session is addressed, so no engine counters).
    fn server_stat_json(&self, conn: &Conn) -> String {
        let cache = self.shared.cache.stats();
        format!(
            "{{\"model\":\"eventloop\",\"backend\":\"{}\",\"connections\":{},\
             \"sessions\":{},\"queue_depth_hwm\":{},\"dropped_broadcast\":{},\
             \"plan_cache_entries\":{},\"plan_cache_hits\":{},\
             \"plan_cache_misses\":{}}}",
            self.poller.backend_name(),
            self.shared.connections.load(Ordering::Relaxed),
            self.shared.sessions.load(Ordering::Relaxed),
            self.shared
                .queue_hwm
                .load(Ordering::Relaxed)
                .max(conn.write.depth_hwm()),
            self.shared.dropped.load(Ordering::Relaxed),
            cache.entries,
            cache.hits,
            cache.misses,
        )
    }
}
