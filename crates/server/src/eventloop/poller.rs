//! Minimal readiness poller: `epoll` on Linux through raw syscalls,
//! with a portable `poll(2)` fallback.
//!
//! The workspace is hermetic (no libc crate, no mio), but the C
//! library is already linked into every std binary — declaring the
//! four epoll entry points `extern "C"` is enough to use them. The
//! fallback backend drives the same interface over `poll(2)`, which
//! every Unix provides; it is also selectable at runtime
//! (`XSQ_POLLER=poll`) so the CI suite can exercise both backends on
//! the same machine.
//!
//! The interface is deliberately tiny — register / modify / deregister
//! an fd with a `u64` token and level-triggered read/write interest,
//! then [`Poller::wait`] for [`PollEvent`]s. Level-triggered semantics
//! keep the event loop simple: unread bytes or an unflushed queue
//! simply report ready again on the next wait.

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// One readiness report.
#[derive(Debug, Clone, Copy)]
pub struct PollEvent {
    pub token: u64,
    pub readable: bool,
    pub writable: bool,
    /// Error or hangup — the connection should be read (to observe
    /// EOF/error) and torn down.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod sys_epoll {
    use std::os::fd::RawFd;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLL_CLOEXEC: i32 = 0o2000000;

    /// Mirrors `struct epoll_event`; packed on x86, where the kernel
    /// ABI leaves the u64 unaligned.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: RawFd, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
    }
}

#[cfg(unix)]
mod sys_poll {
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    extern "C" {
        pub fn poll(
            fds: *mut PollFd,
            nfds: std::os::raw::c_ulong,
            timeout: std::os::raw::c_int,
        ) -> i32;
    }
}

#[cfg(target_os = "linux")]
struct Epoll {
    epfd: RawFd,
    buf: Vec<sys_epoll::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl Epoll {
    fn new() -> io::Result<Epoll> {
        let epfd = unsafe { sys_epoll::epoll_create1(sys_epoll::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll {
            epfd,
            buf: vec![sys_epoll::EpollEvent { events: 0, data: 0 }; 256],
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        let mut events = sys_epoll::EPOLLERR | sys_epoll::EPOLLHUP;
        if read {
            events |= sys_epoll::EPOLLIN;
        }
        if write {
            events |= sys_epoll::EPOLLOUT;
        }
        let mut ev = sys_epoll::EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { sys_epoll::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Duration) -> io::Result<()> {
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        let n = loop {
            let rc = unsafe {
                sys_epoll::epoll_wait(self.epfd, self.buf.as_mut_ptr(), self.buf.len() as i32, ms)
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &self.buf[..n] {
            // Copy out of the (possibly packed) struct before use.
            let events = ev.events;
            let data = ev.data;
            out.push(PollEvent {
                token: data,
                readable: events & sys_epoll::EPOLLIN != 0,
                writable: events & sys_epoll::EPOLLOUT != 0,
                hangup: events & (sys_epoll::EPOLLERR | sys_epoll::EPOLLHUP) != 0,
            });
        }
        if n == self.buf.len() {
            // Saturated wait: grow so a big accept burst cannot starve
            // the tail of the registration set.
            self.buf.resize(
                self.buf.len() * 2,
                sys_epoll::EpollEvent { events: 0, data: 0 },
            );
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Epoll {
    fn drop(&mut self) {
        unsafe { sys_epoll::close(self.epfd) };
    }
}

/// `poll(2)` backend: the registration set lives in user space as a
/// parallel `pollfd`/token array rebuilt incrementally.
#[derive(Default)]
struct PollBackend {
    fds: Vec<sys_poll::PollFd>,
    tokens: Vec<u64>,
}

impl PollBackend {
    fn find(&self, fd: RawFd) -> Option<usize> {
        self.fds.iter().position(|p| p.fd == fd)
    }

    fn events_for(read: bool, write: bool) -> i16 {
        let mut events = 0i16;
        if read {
            events |= sys_poll::POLLIN;
        }
        if write {
            events |= sys_poll::POLLOUT;
        }
        events
    }

    fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Duration) -> io::Result<()> {
        let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        let n = loop {
            let rc = unsafe {
                sys_poll::poll(
                    self.fds.as_mut_ptr(),
                    self.fds.len() as std::os::raw::c_ulong,
                    ms,
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        if n == 0 {
            return Ok(());
        }
        for (p, &token) in self.fds.iter().zip(&self.tokens) {
            if p.revents == 0 {
                continue;
            }
            out.push(PollEvent {
                token,
                readable: p.revents & sys_poll::POLLIN != 0,
                writable: p.revents & sys_poll::POLLOUT != 0,
                hangup: p.revents & (sys_poll::POLLERR | sys_poll::POLLHUP | sys_poll::POLLNVAL)
                    != 0,
            });
        }
        Ok(())
    }
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(Epoll),
    Poll(PollBackend),
}

/// The readiness poller behind one event-loop thread.
pub struct Poller {
    backend: Backend,
}

impl Poller {
    /// Build the best available backend: epoll on Linux (unless
    /// `XSQ_POLLER=poll` forces the fallback), `poll(2)` elsewhere.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            let forced = std::env::var("XSQ_POLLER").ok();
            if forced.as_deref() != Some("poll") {
                match Epoll::new() {
                    Ok(e) => {
                        return Ok(Poller {
                            backend: Backend::Epoll(e),
                        })
                    }
                    Err(_) if forced.is_none() => {} // fall through to poll(2)
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(Poller {
            backend: Backend::Poll(PollBackend::default()),
        })
    }

    /// The active backend's name (surfaced in the serve banner).
    pub fn backend_name(&self) -> &'static str {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => "epoll",
            Backend::Poll(_) => "poll",
        }
    }

    pub fn register(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(sys_epoll::EPOLL_CTL_ADD, fd, token, read, write),
            Backend::Poll(p) => {
                if p.find(fd).is_some() {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd already registered",
                    ));
                }
                p.fds.push(sys_poll::PollFd {
                    fd,
                    events: PollBackend::events_for(read, write),
                    revents: 0,
                });
                p.tokens.push(token);
                Ok(())
            }
        }
    }

    pub fn modify(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(sys_epoll::EPOLL_CTL_MOD, fd, token, read, write),
            Backend::Poll(p) => match p.find(fd) {
                Some(i) => {
                    p.fds[i].events = PollBackend::events_for(read, write);
                    p.tokens[i] = token;
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            },
        }
    }

    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.ctl(sys_epoll::EPOLL_CTL_DEL, fd, 0, false, false),
            Backend::Poll(p) => match p.find(fd) {
                Some(i) => {
                    p.fds.swap_remove(i);
                    p.tokens.swap_remove(i);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            },
        }
    }

    /// Wait up to `timeout` and append readiness reports to `out`
    /// (which is cleared first). A timeout simply returns no events.
    pub fn wait(&mut self, out: &mut Vec<PollEvent>, timeout: Duration) -> io::Result<()> {
        out.clear();
        match &mut self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(e) => e.wait(out, timeout),
            Backend::Poll(p) => p.wait(out, timeout),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    fn backends() -> Vec<Poller> {
        let mut out = Vec::new();
        #[cfg(target_os = "linux")]
        {
            let p = Poller::new().unwrap();
            if p.backend_name() == "epoll" {
                out.push(p);
            }
        }
        out.push(Poller {
            backend: Backend::Poll(PollBackend::default()),
        });
        out
    }

    #[test]
    fn readiness_roundtrip_on_every_backend() {
        for mut poller in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            poller
                .register(listener.as_raw_fd(), 1, true, false)
                .unwrap();

            let mut events = Vec::new();
            poller.wait(&mut events, Duration::from_millis(10)).unwrap();
            assert!(
                events.is_empty(),
                "{}: idle listener reported ready",
                poller.backend_name()
            );

            let mut client = TcpStream::connect(addr).unwrap();
            poller.wait(&mut events, Duration::from_secs(5)).unwrap();
            assert!(
                events.iter().any(|e| e.token == 1 && e.readable),
                "{}: pending accept not reported",
                poller.backend_name()
            );

            let (mut served, _) = listener.accept().unwrap();
            served.set_nonblocking(true).unwrap();
            poller.register(served.as_raw_fd(), 2, true, false).unwrap();
            client.write_all(b"hello").unwrap();
            poller.wait(&mut events, Duration::from_secs(5)).unwrap();
            assert!(
                events.iter().any(|e| e.token == 2 && e.readable),
                "{}: readable data not reported",
                poller.backend_name()
            );
            let mut buf = [0u8; 8];
            assert_eq!(served.read(&mut buf).unwrap(), 5);

            // Write interest on an empty socket buffer fires at once.
            poller.modify(served.as_raw_fd(), 2, true, true).unwrap();
            poller.wait(&mut events, Duration::from_secs(5)).unwrap();
            assert!(events.iter().any(|e| e.token == 2 && e.writable));

            poller.deregister(served.as_raw_fd()).unwrap();
            poller.deregister(listener.as_raw_fd()).unwrap();
            drop(client);
            poller.wait(&mut events, Duration::from_millis(10)).unwrap();
            assert!(
                events.is_empty(),
                "{}: deregistered fds still reporting",
                poller.backend_name()
            );
        }
    }
}
