//! Broadcast mode: one ingest stream, one shared [`QueryIndex`], many
//! subscribers.
//!
//! `xsq serve --broadcast` inverts the per-session model. A single
//! designated *feeder* connection claims the ingest role (FEEDER) and
//! pushes documents; every other connection subscribes standing
//! queries and receives the matching results of the *shared* stream.
//! The paper's single-pass property is what makes this cheap: the
//! document is parsed once and dispatched once through one index, no
//! matter how many subscribers are attached — fan-out touches only the
//! already-determined results.
//!
//! Identity contract: a subscriber that joins before feeding starts
//! receives byte-for-byte the frames a solo session would have
//! received for the same SUB batch. Two mechanisms make that hold:
//!
//! * **Batch sharing, not query sharing.** Subscribers with the same
//!   SUB payload (same query texts, same order) share one plan-cache
//!   entry and one set of index subscriptions; their result ids are
//!   the *local* positions `0..n-1` within the batch, exactly the ids
//!   a private session would have allocated. Distinct batches get
//!   distinct index subscriptions — merging them could interleave
//!   result order differently than a solo run, so it is never done
//!   across batch boundaries.
//! * **Join-at-boundary activation.** A subscriber that joins
//!   mid-document is armed for the *next* document (the index's
//!   runners are already past the document start), and its DOC_OK doc
//!   counter starts at zero from that document — the same numbering a
//!   fresh solo session would produce.
//!
//! Per-subscriber output queues are bounded by the serve options; the
//! *block* policy pauses the feeder until every queue drains (total
//! broadcast, lock-step with the slowest subscriber) while the *drop*
//! policy discards RESULT/UPDATE frames for saturated subscribers and
//! counts them (`dropped_broadcast` in STAT). Queue accounting lives
//! in the event loop, which owns the sockets; this module only stages
//! `(token, frame)` pairs.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use xsq_core::{PlanCache, QueryId, QueryIndex, QuerySink, XsqEngine, XsqMode};
use xsq_xml::{ParsePoll, PushParser, StreamParser};

use crate::proto::{err_payload, errcode, frame_bytes, json_escape, op, Frame, WireBound};
use crate::session::{
    bound_diagnostics, query_diagnostics, wire_bound, SessionLimits, TransportStats,
};

/// One subscriber of one entry: the connection token, the logical
/// session id on that connection (wire v2; `None` for v1), and the
/// global document index from which this subscriber is live.
struct SubRef {
    token: u64,
    sid: Option<u32>,
    active_from: u32,
}

/// One shared SUB batch: the plan-cache key, the global ids its index
/// subscriptions got, and everyone attached to it.
struct Entry {
    key: String,
    ids: Vec<QueryId>,
    subs: Vec<SubRef>,
}

/// The broadcast hub: protocol roles, the shared index, and result
/// fan-out staging. The event loop drains [`Hub::out`] into the
/// per-connection write queues (applying the overflow policy) and
/// marks every token in [`Hub::closes`] for flush-and-close.
pub(crate) struct Hub {
    engine: XsqEngine,
    limits: SessionLimits,
    cache: Arc<PlanCache>,
    index: QueryIndex,
    parser: PushParser,
    entries: Vec<Option<Entry>>,
    by_key: HashMap<String, usize>,
    /// Global query id → entry slot / local position.
    id_entry: Vec<u32>,
    id_local: Vec<u32>,
    /// (token, sid) → entry slot, one batch per logical session.
    sub_entry: HashMap<(u64, Option<u32>), usize>,
    feeder: Option<u64>,
    doc_active: bool,
    docs: u32,
    results: u64,
    updates: u64,
    bytes_in: u64,
    ingest_nanos: u64,
    /// Staged outgoing frames, drained by the event loop.
    pub out: Vec<(u64, Arc<Vec<u8>>)>,
    /// Connections to flush-and-close, drained by the event loop.
    pub closes: Vec<u64>,
}

impl Hub {
    pub fn new(engine: XsqEngine, limits: SessionLimits, cache: Arc<PlanCache>) -> Hub {
        Hub {
            engine,
            limits,
            cache,
            index: QueryIndex::new(engine),
            parser: StreamParser::push_mode(),
            entries: Vec::new(),
            by_key: HashMap::new(),
            id_entry: Vec::new(),
            id_local: Vec::new(),
            sub_entry: HashMap::new(),
            feeder: None,
            doc_active: false,
            docs: 0,
            results: 0,
            updates: 0,
            bytes_in: 0,
            ingest_nanos: 0,
            out: Vec::new(),
            closes: Vec::new(),
        }
    }

    pub fn doc_active(&self) -> bool {
        self.doc_active
    }

    pub fn feeder_token(&self) -> Option<u64> {
        self.feeder
    }

    /// Number of attached subscriber sessions (the feeder polls this
    /// through STAT before it starts feeding).
    pub fn subscriber_count(&self) -> usize {
        self.sub_entry.len()
    }

    /// Frame a reply in the subscriber's negotiated wire framing.
    fn stage(&mut self, token: u64, sid: Option<u32>, opcode: u8, payload: &[u8]) {
        self.out
            .push((token, Arc::new(reply_frame(sid, opcode, payload))));
    }

    fn stage_err(&mut self, token: u64, sid: Option<u32>, code: &str, message: &str) {
        let payload = err_payload(code, message, &[]);
        self.stage(token, sid, op::ERR, &payload);
    }

    /// Handle one frame from connection `token` / logical session
    /// `sid`. `transport` carries the loop's counters for STAT.
    pub fn dispatch(
        &mut self,
        token: u64,
        sid: Option<u32>,
        frame: &Frame,
        transport: &TransportStats,
        backend: &'static str,
    ) {
        match frame.op {
            op::SUB => self.on_sub(token, sid, &frame.payload),
            op::FEEDER => self.on_feeder(token, sid),
            op::FEED => self.on_feed(token, sid, &frame.payload),
            op::END_DOC => self.on_end_doc(token, sid),
            op::UNSUB => self.stage_err(
                token,
                sid,
                errcode::BROADCAST_ROLE,
                "broadcast subscriptions last for the connection; \
                 disconnect (or BYE) instead of UNSUB",
            ),
            op::STAT => {
                let json = self.stat_json(transport, backend);
                self.stage(token, sid, op::STAT_OK, json.as_bytes());
            }
            op::BYE => {
                self.stage(token, sid, op::OK, &[op::BYE]);
                self.closes.push(token);
            }
            other => {
                self.stage_err(
                    token,
                    sid,
                    errcode::UNKNOWN_OP,
                    &format!("unknown opcode 0x{other:02x}"),
                );
                self.closes.push(token);
            }
        }
    }

    fn on_feeder(&mut self, token: u64, sid: Option<u32>) {
        if self.feeder == Some(token) {
            self.stage(token, sid, op::OK, &[op::FEEDER]);
            return;
        }
        if self.feeder.is_some() {
            self.stage_err(
                token,
                sid,
                errcode::BROADCAST_ROLE,
                "a feeder is already attached",
            );
            return;
        }
        if self.sub_entry.keys().any(|(t, _)| *t == token) {
            self.stage_err(
                token,
                sid,
                errcode::BROADCAST_ROLE,
                "a subscriber connection cannot claim the feeder role",
            );
            return;
        }
        self.feeder = Some(token);
        self.stage(token, sid, op::OK, &[op::FEEDER]);
    }

    fn on_sub(&mut self, token: u64, sid: Option<u32>, payload: &[u8]) {
        if self.feeder == Some(token) {
            self.stage_err(
                token,
                sid,
                errcode::BROADCAST_ROLE,
                "the feeder cannot subscribe",
            );
            return;
        }
        if self.sub_entry.contains_key(&(token, sid)) {
            self.stage_err(
                token,
                sid,
                errcode::BROADCAST_ROLE,
                "this session already subscribed (one SUB batch per broadcast session)",
            );
            return;
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            self.stage_err(token, sid, errcode::PROTOCOL, "SUB payload is not UTF-8");
            return;
        };
        let queries: Vec<&str> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        if queries.is_empty() {
            self.stage_err(token, sid, errcode::BAD_QUERY, "SUB carried no queries");
            return;
        }
        let plan = match self.cache.checkout(self.engine, &queries) {
            Ok(plan) => plan,
            Err((i, e)) => {
                let payload = err_payload(
                    errcode::BAD_QUERY,
                    &format!("query {} ({}): {e}", i + 1, queries[i]),
                    &query_diagnostics(queries[i], &e),
                );
                self.stage(token, sid, op::ERR, &payload);
                return;
            }
        };
        if let Some(budget) = self.limits.max_bound {
            if let Some(i) = plan.bounds().iter().position(|b| !b.admits(budget)) {
                let payload = err_payload(
                    errcode::OVER_BUDGET,
                    &format!(
                        "query {} ({}): static memory bound {} exceeds the \
                         server budget of {budget} buffered item(s)",
                        i + 1,
                        queries[i],
                        plan.bounds()[i],
                    ),
                    &bound_diagnostics(queries[i], self.limits.dtd.as_deref()),
                );
                self.cache.release(plan.key());
                self.stage(token, sid, op::ERR, &payload);
                return;
            }
        }
        let slot = match self.by_key.get(plan.key()) {
            Some(&slot) => slot,
            None => {
                let ids = self.index.subscribe_plan(&plan);
                let slot = self.entries.len();
                for (local, id) in ids.iter().enumerate() {
                    debug_assert_eq!(id.0 as usize, self.id_entry.len());
                    self.id_entry.push(slot as u32);
                    self.id_local.push(local as u32);
                }
                self.entries.push(Some(Entry {
                    key: plan.key().to_string(),
                    ids,
                    subs: Vec::new(),
                }));
                self.by_key.insert(plan.key().to_string(), slot);
                slot
            }
        };
        let entry = self.entries[slot].as_mut().expect("live entry");
        entry.subs.push(SubRef {
            token,
            sid,
            active_from: self.docs + u32::from(self.doc_active),
        });
        self.sub_entry.insert((token, sid), slot);
        // SUB_OK carries *local* ids 0..n-1 — the ids a private session
        // would have allocated for the same batch — plus the bounds.
        let n = plan.len();
        let mut reply = Vec::with_capacity(4 + (4 + WireBound::SIZE) * n);
        reply.extend_from_slice(&(n as u32).to_le_bytes());
        for local in 0..n as u32 {
            reply.extend_from_slice(&local.to_le_bytes());
        }
        for bound in plan.bounds() {
            wire_bound(bound).encode(&mut reply);
        }
        self.stage(token, sid, op::SUB_OK, &reply);
    }

    fn on_feed(&mut self, token: u64, sid: Option<u32>, payload: &[u8]) {
        if self.feeder != Some(token) {
            self.stage_err(
                token,
                sid,
                errcode::BROADCAST_ROLE,
                "only the feeder may FEED on a broadcast server",
            );
            return;
        }
        self.doc_active = true;
        self.bytes_in += payload.len() as u64;
        let t0 = Instant::now();
        self.parser.push(payload);
        let failed = self.pump();
        self.ingest_nanos += t0.elapsed().as_nanos() as u64;
        if let Some(e) = failed {
            self.fail_stream(token, sid, &e);
        }
    }

    fn on_end_doc(&mut self, token: u64, sid: Option<u32>) {
        if self.feeder != Some(token) {
            self.stage_err(
                token,
                sid,
                errcode::BROADCAST_ROLE,
                "only the feeder may end a document on a broadcast server",
            );
            return;
        }
        if !self.doc_active {
            self.stage_err(token, sid, errcode::PROTOCOL, "END-DOC without any FEED");
            return;
        }
        let t0 = Instant::now();
        self.parser.finish();
        if let Some(e) = self.pump() {
            self.ingest_nanos += t0.elapsed().as_nanos() as u64;
            self.fail_stream(token, sid, &e);
            return;
        }
        {
            let Hub {
                index,
                entries,
                id_entry,
                id_local,
                out,
                docs,
                results,
                updates,
                ..
            } = self;
            let mut sink = FanSink {
                entries,
                id_entry,
                id_local,
                cur_doc: *docs,
                out,
                results: 0,
                updates: 0,
            };
            let _ = index.finish(&mut sink);
            *results += sink.results;
            *updates += sink.updates;
        }
        self.ingest_nanos += t0.elapsed().as_nanos() as u64;
        // DOC_OK per active subscriber, numbered from each one's own
        // first document (what a private session would report)…
        let mut acks: Vec<(u64, Option<u32>, u32)> = Vec::new();
        for entry in self.entries.iter().flatten() {
            for sub in &entry.subs {
                if sub.active_from <= self.docs {
                    acks.push((sub.token, sub.sid, self.docs - sub.active_from));
                }
            }
        }
        for (t, s, di) in acks {
            self.stage(t, s, op::DOC_OK, &di.to_le_bytes());
        }
        // …and one global ack to the feeder.
        self.stage(token, sid, op::DOC_OK, &self.docs.to_le_bytes());
        self.docs += 1;
        self.doc_active = false;
        self.parser.reset_push();
    }

    /// Drain every event the parser can currently produce through the
    /// shared index, fanning results as they are determined.
    fn pump(&mut self) -> Option<xsq_xml::Error> {
        let Hub {
            index,
            parser,
            entries,
            id_entry,
            id_local,
            out,
            docs,
            results,
            updates,
            ..
        } = self;
        let mut sink = FanSink {
            entries,
            id_entry,
            id_local,
            cur_doc: *docs,
            out,
            results: 0,
            updates: 0,
        };
        let failed = loop {
            match parser.poll_raw() {
                Ok(ParsePoll::Event(ev)) => index.feed_raw(&ev, &mut sink),
                Ok(ParsePoll::NeedMore) | Ok(ParsePoll::End) => break None,
                Err(e) => break Some(e),
            }
        };
        *results += sink.results;
        *updates += sink.updates;
        failed
    }

    /// A parse error poisons the shared stream for everyone: there is
    /// no per-subscriber recovery from a corrupt broadcast document.
    /// Every attached connection gets a framed parse error and closes.
    fn fail_stream(&mut self, feeder_token: u64, feeder_sid: Option<u32>, e: &xsq_xml::Error) {
        let message = format!("document {}: {e}", self.docs);
        self.stage_err(feeder_token, feeder_sid, errcode::PARSE, &message);
        self.closes.push(feeder_token);
        let subs: Vec<(u64, Option<u32>)> = self.sub_entry.keys().copied().collect();
        for (t, s) in subs {
            self.stage_err(t, s, errcode::PARSE, &message);
            if t != feeder_token {
                self.closes.push(t);
            }
        }
        self.doc_active = false;
        self.parser.reset_push();
    }

    /// A connection went away: release its subscriptions (and cache
    /// references), tear down entries that lost their last subscriber,
    /// or — if it was the feeder mid-document — poison the stream for
    /// every subscriber, exactly like a parse failure.
    pub fn conn_closed(&mut self, token: u64) {
        if self.feeder == Some(token) {
            self.feeder = None;
            if self.doc_active {
                let message = format!("feeder disconnected inside document {}", self.docs);
                let subs: Vec<(u64, Option<u32>)> = self.sub_entry.keys().copied().collect();
                for (t, s) in subs {
                    self.stage_err(t, s, errcode::PROTOCOL, &message);
                    self.closes.push(t);
                }
                self.doc_active = false;
                self.parser.reset_push();
            }
        }
        let gone: Vec<(u64, Option<u32>)> = self
            .sub_entry
            .keys()
            .filter(|(t, _)| *t == token)
            .copied()
            .collect();
        for key in gone {
            let slot = self.sub_entry.remove(&key).expect("mapped subscriber");
            let Some(entry) = self.entries[slot].as_mut() else {
                continue;
            };
            entry.subs.retain(|s| !(s.token == key.0 && s.sid == key.1));
            // Each SUB checked one reference out of the cache.
            self.cache.release(&entry.key.clone());
            if entry.subs.is_empty() {
                let entry = self.entries[slot].take().expect("live entry");
                for id in entry.ids {
                    self.index.unsubscribe(id);
                }
                self.by_key.remove(&entry.key);
            }
        }
    }

    /// Close a logical v2 session without closing the connection.
    pub fn session_closed(&mut self, token: u64, sid: u32) -> bool {
        let key = (token, Some(sid));
        let Some(slot) = self.sub_entry.remove(&key) else {
            return false;
        };
        if let Some(entry) = self.entries[slot].as_mut() {
            entry
                .subs
                .retain(|s| !(s.token == token && s.sid == Some(sid)));
            self.cache.release(&entry.key.clone());
            if entry.subs.is_empty() {
                let entry = self.entries[slot].take().expect("live entry");
                for id in entry.ids {
                    self.index.unsubscribe(id);
                }
                self.by_key.remove(&entry.key);
            }
        }
        true
    }

    /// The broadcast STAT reply: shared-stream counters plus the
    /// loop-level transport numbers.
    fn stat_json(&self, transport: &TransportStats, backend: &'static str) -> String {
        let secs = self.ingest_nanos as f64 / 1e9;
        let mb_per_sec = if secs > 0.0 {
            self.bytes_in as f64 / (1024.0 * 1024.0) / secs
        } else {
            0.0
        };
        let cache = self.cache.stats();
        format!(
            "{{\"engine\":\"{}\",\"model\":\"broadcast\",\"backend\":\"{}\",\
             \"subscribers\":{},\"feeder\":{},\"entries\":{},\"docs\":{},\
             \"doc_active\":{},\"events\":{},\"results\":{},\"updates\":{},\
             \"bytes_in\":{},\"ingest_mb_per_sec\":{:.2},\
             \"connections\":{},\"sessions\":{},\"queue_depth_hwm\":{},\
             \"dropped_broadcast\":{},\"plan_cache_entries\":{},\
             \"plan_cache_hits\":{},\"plan_cache_misses\":{},\"kernel\":\"{}\"}}",
            json_escape(match self.engine.mode() {
                XsqMode::Full => "xsq-f",
                XsqMode::NoClosure => "xsq-nc",
            }),
            backend,
            self.subscriber_count(),
            self.feeder.is_some(),
            self.by_key.len(),
            self.docs,
            self.doc_active,
            self.index.events(),
            self.results,
            self.updates,
            self.bytes_in,
            mb_per_sec,
            transport.connections,
            self.subscriber_count(),
            transport.queue_depth_hwm,
            transport.dropped_broadcast,
            cache.entries,
            cache.hits,
            cache.misses,
            xsq_xml::scan::active_kernel(),
        )
    }
}

/// Encode a reply frame in a subscriber's framing: wire v2 sessions
/// get the session-id prefix, v1 connections the bare payload.
pub(crate) fn reply_frame(sid: Option<u32>, opcode: u8, payload: &[u8]) -> Vec<u8> {
    match sid {
        Some(sid) => {
            let mut p = Vec::with_capacity(4 + payload.len());
            p.extend_from_slice(&sid.to_le_bytes());
            p.extend_from_slice(payload);
            frame_bytes(opcode, &p)
        }
        None => frame_bytes(opcode, payload),
    }
}

/// Routes each determined result to every active subscriber of its
/// entry. The v1 encoding is built once per result and `Arc`-shared
/// across all v1 subscribers; v2 frames differ per session id.
struct FanSink<'a> {
    entries: &'a [Option<Entry>],
    id_entry: &'a [u32],
    id_local: &'a [u32],
    cur_doc: u32,
    out: &'a mut Vec<(u64, Arc<Vec<u8>>)>,
    results: u64,
    updates: u64,
}

impl FanSink<'_> {
    fn fan(&mut self, id: QueryId, encode: impl Fn(u32, Option<u32>) -> Vec<u8>) {
        let Some(&slot) = self.id_entry.get(id.0 as usize) else {
            return;
        };
        let Some(entry) = self.entries[slot as usize].as_ref() else {
            return;
        };
        let local = self.id_local[id.0 as usize];
        let mut shared_v1: Option<Arc<Vec<u8>>> = None;
        for sub in &entry.subs {
            if sub.active_from > self.cur_doc {
                continue; // joined mid-document; live from the next one
            }
            let bytes = match sub.sid {
                None => Arc::clone(shared_v1.get_or_insert_with(|| Arc::new(encode(local, None)))),
                Some(sid) => Arc::new(encode(local, Some(sid))),
            };
            self.out.push((sub.token, bytes));
        }
    }
}

impl QuerySink for FanSink<'_> {
    fn result(&mut self, id: QueryId, value: &str) {
        self.results += 1;
        self.fan(id, |local, sid| {
            let mut p = Vec::with_capacity(4 + value.len());
            p.extend_from_slice(&local.to_le_bytes());
            p.extend_from_slice(value.as_bytes());
            reply_frame(sid, op::RESULT, &p)
        });
    }

    fn aggregate_update(&mut self, id: QueryId, value: f64) {
        self.updates += 1;
        self.fan(id, |local, sid| {
            let mut p = [0u8; 12];
            p[..4].copy_from_slice(&local.to_le_bytes());
            p[4..].copy_from_slice(&value.to_le_bytes());
            reply_frame(sid, op::UPDATE, &p)
        });
    }
}
