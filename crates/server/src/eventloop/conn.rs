//! Non-blocking framing buffers for the event loop.
//!
//! The threaded server reads frames with blocking calls and writes
//! through a dedicated writer thread; the event loop instead owns a
//! pair of buffers per connection and lets readiness drive them:
//!
//! * [`FrameBuf`] accumulates whatever bytes the socket yields and
//!   decodes complete frames incrementally. A frame split across any
//!   number of reads — down to one byte at a time — decodes exactly
//!   like one read. Oversized frames are rejected on the four declared
//!   length bytes alone, before any body is buffered.
//! * [`WriteBuf`] queues encoded reply frames as `Arc<Vec<u8>>` (so a
//!   broadcast fan-out shares one encoding across thousands of
//!   subscribers) and flushes as far as the socket allows, tracking a
//!   per-connection depth high-water mark for STAT.

use std::collections::VecDeque;
use std::io::{self, ErrorKind, Write};
use std::sync::Arc;

use crate::proto::Frame;

/// Framing-layer failures that carry no recoverable stream position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Declared length exceeds the cap; the body was never read.
    TooLarge(u64),
    /// Zero-length frame (every frame carries at least its opcode).
    Zero,
}

/// Incremental frame decoder over an append-only byte buffer.
pub struct FrameBuf {
    buf: Vec<u8>,
    start: usize,
    max_frame: usize,
}

impl FrameBuf {
    pub fn new(max_frame: usize) -> FrameBuf {
        FrameBuf {
            buf: Vec::new(),
            start: 0,
            max_frame,
        }
    }

    /// Append bytes read off the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet decoded (a partial frame, if any).
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Decode the next complete frame, if the buffer holds one.
    ///
    /// `Ok(None)` means "need more bytes". Errors are terminal: the
    /// byte stream is either hostile (oversized, zero-length) and must
    /// not be resynchronized.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            self.compact();
            return Ok(None);
        }
        let len = u32::from_le_bytes(avail[..4].try_into().unwrap()) as usize;
        if len == 0 {
            return Err(FrameError::Zero);
        }
        if len > self.max_frame {
            return Err(FrameError::TooLarge(len as u64));
        }
        if avail.len() < 4 + len {
            self.compact();
            return Ok(None);
        }
        let op = avail[4];
        let payload = avail[5..4 + len].to_vec();
        self.start += 4 + len;
        Ok(Some(Frame { op, payload }))
    }

    /// Reclaim consumed prefix space once it dominates the buffer.
    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 4096 && self.start * 2 > self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Outgoing frame queue flushed by writability.
#[derive(Default)]
pub struct WriteBuf {
    /// Encoded frames with a per-frame flush offset; fan-out pushes
    /// the same `Arc` into many queues.
    queue: VecDeque<(Arc<Vec<u8>>, usize)>,
    queued_bytes: usize,
    depth_hwm: u64,
}

impl WriteBuf {
    pub fn new() -> WriteBuf {
        WriteBuf::default()
    }

    pub fn push(&mut self, frame: Arc<Vec<u8>>) {
        self.queued_bytes += frame.len();
        self.queue.push_back((frame, 0));
        self.depth_hwm = self.depth_hwm.max(self.queue.len() as u64);
    }

    /// Queued frames not yet fully written.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Highest queue depth ever observed (frames).
    pub fn depth_hwm(&self) -> u64 {
        self.depth_hwm
    }

    /// Write as much as the socket accepts. `Ok(true)` means the queue
    /// drained; `Ok(false)` means the socket would block (keep write
    /// interest registered).
    ///
    /// Gathers queued frames into one `writev` per syscall: result
    /// frames are tens of bytes each, and a session replay stages
    /// thousands of them — a write per frame would make the loop
    /// syscall-bound where the threaded model's `BufWriter` is not.
    pub fn flush_into(&mut self, w: &mut impl Write) -> io::Result<bool> {
        const MAX_IOV: usize = 256;
        while !self.queue.is_empty() {
            let mut slices: Vec<io::IoSlice> = Vec::with_capacity(self.queue.len().min(MAX_IOV));
            for (frame, off) in self.queue.iter().take(MAX_IOV) {
                slices.push(io::IoSlice::new(&frame[*off..]));
            }
            match w.write_vectored(&slices) {
                Ok(0) => {
                    return Err(io::Error::new(
                        ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(mut n) => {
                    self.queued_bytes -= n;
                    while n > 0 {
                        let (frame, off) = self.queue.front_mut().expect("accounted frame");
                        let rem = frame.len() - *off;
                        if n >= rem {
                            n -= rem;
                            self.queue.pop_front();
                        } else {
                            *off += n;
                            n = 0;
                        }
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::{frame_bytes, op};

    #[test]
    fn frames_decode_across_arbitrary_splits() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&frame_bytes(op::SUB, b"/a/text()"));
        wire.extend_from_slice(&frame_bytes(op::END_DOC, b""));
        wire.extend_from_slice(&frame_bytes(op::FEED, b"<a>hi</a>"));
        for chunk in [1usize, 2, 3, wire.len()] {
            let mut fb = FrameBuf::new(1024);
            let mut frames = Vec::new();
            for piece in wire.chunks(chunk) {
                fb.extend(piece);
                while let Some(f) = fb.next_frame().unwrap() {
                    frames.push(f);
                }
            }
            assert_eq!(frames.len(), 3, "chunk size {chunk}");
            assert_eq!(frames[0].op, op::SUB);
            assert_eq!(frames[0].payload, b"/a/text()");
            assert_eq!(frames[1].op, op::END_DOC);
            assert!(frames[1].payload.is_empty());
            assert_eq!(frames[2].payload, b"<a>hi</a>");
            assert_eq!(fb.buffered(), 0);
        }
    }

    #[test]
    fn oversized_frame_rejected_on_header_alone() {
        let mut fb = FrameBuf::new(16);
        // Declare 64 MiB but send only the length prefix.
        fb.extend(&(64u32 * 1024 * 1024).to_le_bytes());
        assert_eq!(fb.next_frame(), Err(FrameError::TooLarge(64 * 1024 * 1024)));
    }

    #[test]
    fn zero_length_frame_rejected() {
        let mut fb = FrameBuf::new(16);
        fb.extend(&0u32.to_le_bytes());
        assert_eq!(fb.next_frame(), Err(FrameError::Zero));
    }

    /// An `io::Write` that accepts a fixed number of bytes per call and
    /// then reports `WouldBlock` — a socket with a tiny send buffer.
    struct Throttle {
        accepted: Vec<u8>,
        per_call: usize,
        calls_left: usize,
    }

    impl Write for Throttle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.calls_left == 0 {
                return Err(io::Error::new(ErrorKind::WouldBlock, "full"));
            }
            self.calls_left -= 1;
            let n = buf.len().min(self.per_call);
            self.accepted.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_buf_resumes_across_partial_writes() {
        let mut wb = WriteBuf::new();
        let a = Arc::new(frame_bytes(op::RESULT, b"0123456789"));
        let b = Arc::new(frame_bytes(op::DOC_OK, &0u32.to_le_bytes()));
        wb.push(Arc::clone(&a));
        wb.push(Arc::clone(&b));
        assert_eq!(wb.depth_hwm(), 2);

        let mut sink = Throttle {
            accepted: Vec::new(),
            per_call: 3,
            calls_left: 2,
        };
        assert!(!wb.flush_into(&mut sink).unwrap());
        assert!(!wb.is_empty());

        sink.calls_left = usize::MAX;
        assert!(wb.flush_into(&mut sink).unwrap());
        assert!(wb.is_empty());
        let mut expect = (*a).clone();
        expect.extend_from_slice(&b);
        assert_eq!(sink.accepted, expect);
    }
}
