//! The XSQ wire protocol: length-prefixed binary frames.
//!
//! Every frame is `u32` little-endian *length* (counting the opcode
//! byte and the payload, not the prefix itself), one *opcode* byte,
//! then `length - 1` payload bytes:
//!
//! ```text
//! +----------------+--------+----------------------+
//! | length: u32 LE | opcode | payload (length - 1) |
//! +----------------+--------+----------------------+
//! ```
//!
//! Client → server opcodes live in `0x01..=0x7F`, server → client
//! replies in `0x81..=0xFF`; see [`op`]. The framing layer enforces a
//! maximum frame length ([`MAX_FRAME`] by default) so a hostile or
//! broken client cannot make the server buffer unbounded input, and
//! rejects zero-length frames (every frame carries at least its
//! opcode). The full protocol contract — per-opcode payloads, error
//! codes, ordering guarantees — is specified in `DESIGN.md`.

use std::io::{self, Read, Write};

/// Largest accepted frame: opcode + payload. FEED chunks larger than
/// this must be split by the client (the reference client never sends
/// frames this big; the cap exists to bound a session's memory).
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Frame opcodes. Requests use the low range, replies have the high
/// bit set; the values are part of the wire contract and never reused.
pub mod op {
    /// Subscribe queries (payload: newline-separated XPath texts).
    pub const SUB: u8 = 0x01;
    /// Unsubscribe one query (payload: `u32` LE query id).
    pub const UNSUB: u8 = 0x02;
    /// One chunk of document bytes (payload: raw XML, any split).
    pub const FEED: u8 = 0x03;
    /// End of the current document (empty payload).
    pub const END_DOC: u8 = 0x04;
    /// Request session metrics (empty payload).
    pub const STAT: u8 = 0x05;
    /// Graceful goodbye (empty payload).
    pub const BYE: u8 = 0x06;
    /// Protocol negotiation (payload: `u32` LE highest version the
    /// client speaks). Must be the very first frame on a connection;
    /// a connection that never sends HELLO speaks wire v1. From the
    /// negotiated version 2 on, every *subsequent* frame payload (both
    /// directions) begins with a `u32` LE logical-session id.
    pub const HELLO: u8 = 0x07;
    /// Claim the feeder role on a broadcast server (empty payload).
    pub const FEEDER: u8 = 0x08;

    /// Subscription accepted (payload: `u32` LE count, then ids).
    pub const SUB_OK: u8 = 0x81;
    /// One result value (payload: `u32` LE query id + UTF-8 value).
    pub const RESULT: u8 = 0x82;
    /// One running aggregate update (payload: `u32` LE id + `f64` LE).
    pub const UPDATE: u8 = 0x83;
    /// Document finished cleanly (payload: `u32` LE document index).
    pub const DOC_OK: u8 = 0x84;
    /// Metrics reply (payload: UTF-8 JSON object).
    pub const STAT_OK: u8 = 0x85;
    /// Generic acknowledgement (payload: the acked request opcode).
    pub const OK: u8 = 0x86;
    /// Error reply (payload: UTF-8 JSON, see [`super::err_payload`]).
    pub const ERR: u8 = 0x8F;
    /// Negotiation accepted (payload: `u32` LE negotiated version).
    pub const HELLO_OK: u8 = 0x87;
}

/// The wire protocol versions this build speaks. Version 1 is the
/// original single-session framing; version 2 adds the session-id
/// prefix negotiated via [`op::HELLO`].
pub const WIRE_V1: u32 = 1;
pub const WIRE_V2: u32 = 2;

/// The reserved connection-scoped session id in wire v2: frames
/// addressed to it (STAT, BYE, FEEDER) act on the connection as a
/// whole rather than on one logical session.
pub const CONTROL_SESSION: u32 = u32::MAX;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub op: u8,
    pub payload: Vec<u8>,
}

/// Serialize a frame into a standalone byte buffer (what the writer
/// thread queues and sends).
pub fn frame_bytes(op: u8, payload: &[u8]) -> Vec<u8> {
    let len = (payload.len() + 1) as u32;
    let mut buf = Vec::with_capacity(5 + payload.len());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.push(op);
    buf.extend_from_slice(payload);
    buf
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, op: u8, payload: &[u8]) -> io::Result<()> {
    w.write_all(&frame_bytes(op, payload))
}

/// Read one frame from a blocking stream. Returns `Ok(None)` on clean
/// EOF at a frame boundary; EOF inside a frame is an error (a torn
/// frame — the peer died mid-write).
pub fn read_frame(r: &mut impl Read, max: usize) -> io::Result<Option<Frame>> {
    let mut header = [0u8; 4];
    match r.read(&mut header) {
        Ok(0) => return Ok(None),
        Ok(mut n) => {
            while n < 4 {
                match r.read(&mut header[n..])? {
                    0 => {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "connection closed inside a frame header",
                        ))
                    }
                    m => n += m,
                }
            }
        }
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(header) as usize;
    if len == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "zero-length frame (every frame carries an opcode)",
        ));
    }
    if len > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {max}-byte limit"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|_| {
        io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed inside a frame body",
        )
    })?;
    let op = body[0];
    body.copy_within(1.., 0);
    body.truncate(len - 1);
    Ok(Some(Frame { op, payload: body }))
}

/// Minimal JSON string escaping for protocol payloads.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Stable machine-readable error codes carried in ERR frames. Fatal
/// codes close the connection after the reply; recoverable ones leave
/// the session usable.
pub mod errcode {
    /// A SUB payload failed to compile (recoverable).
    pub const BAD_QUERY: &str = "bad-query";
    /// An UNSUB named an id that was never issued (recoverable).
    pub const BAD_ID: &str = "bad-id";
    /// A request violated the protocol state machine (recoverable
    /// unless the framing itself is broken).
    pub const PROTOCOL: &str = "protocol";
    /// Unknown opcode (fatal — the byte stream may be desynced).
    pub const UNKNOWN_OP: &str = "unknown-op";
    /// Frame length over the limit (fatal).
    pub const TOO_LARGE: &str = "too-large";
    /// The fed document failed to parse (fatal for the session: the
    /// stream position is unrecoverable).
    pub const PARSE: &str = "parse";
    /// No complete frame arrived within the idle window (fatal).
    pub const IDLE_TIMEOUT: &str = "idle-timeout";
    /// The server is draining for shutdown (fatal).
    pub const SHUTTING_DOWN: &str = "shutting-down";
    /// A SUB's static memory bound exceeds the server's `--max-bound`
    /// admission budget (recoverable — fix the query and resubscribe).
    pub const OVER_BUDGET: &str = "over-budget";
    /// A wire-v2 frame named a session id that was never opened or is
    /// already closed (recoverable — sibling sessions are unaffected).
    pub const BAD_SESSION: &str = "bad-session";
    /// A request is not valid for this connection's broadcast role —
    /// FEED from a non-feeder, a second FEEDER claim, SUB from the
    /// feeder (recoverable).
    pub const BROADCAST_ROLE: &str = "broadcast-role";
}

/// A `MemoryBound` on the wire: one kind byte plus a `u64` LE count
/// (meaningful for `items`/`per-depth`, zero otherwise). Appended per
/// query to SUB_OK payloads after the ids — old clients read only the
/// leading count and ignore the tail, so the extension is compatible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireBound {
    Zero,
    Items(u64),
    PerDepth(u64),
    Unbounded,
}

impl WireBound {
    pub const SIZE: usize = 9;

    pub fn encode(&self, out: &mut Vec<u8>) {
        let (kind, k) = match self {
            WireBound::Zero => (0u8, 0u64),
            WireBound::Items(k) => (1, *k),
            WireBound::PerDepth(k) => (2, *k),
            WireBound::Unbounded => (3, 0),
        };
        out.push(kind);
        out.extend_from_slice(&k.to_le_bytes());
    }

    pub fn decode(bytes: &[u8]) -> Option<WireBound> {
        let k = u64::from_le_bytes(bytes.get(1..9)?.try_into().ok()?);
        match bytes[0] {
            0 => Some(WireBound::Zero),
            1 => Some(WireBound::Items(k)),
            2 => Some(WireBound::PerDepth(k)),
            3 => Some(WireBound::Unbounded),
            _ => None,
        }
    }
}

impl std::fmt::Display for WireBound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireBound::Zero => write!(f, "zero"),
            WireBound::Items(k) => write!(f, "items({k})"),
            WireBound::PerDepth(k) => write!(f, "per-depth({k})"),
            WireBound::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// One machine-readable diagnostic inside an ERR payload.
pub struct ErrDiagnostic {
    pub severity: &'static str,
    pub code: String,
    pub message: String,
    pub step: Option<usize>,
}

/// Build an ERR frame payload:
/// `{"code":…,"message":…,"diagnostics":[{severity,code,message,step?}…]}`.
pub fn err_payload(code: &str, message: &str, diagnostics: &[ErrDiagnostic]) -> Vec<u8> {
    let mut json = format!(
        "{{\"code\":\"{}\",\"message\":\"{}\",\"diagnostics\":[",
        json_escape(code),
        json_escape(message)
    );
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            json.push(',');
        }
        json.push_str(&format!(
            "{{\"severity\":\"{}\",\"code\":\"{}\",\"message\":\"{}\"",
            d.severity,
            json_escape(&d.code),
            json_escape(&d.message)
        ));
        if let Some(s) = d.step {
            json.push_str(&format!(",\"step\":{s}"));
        }
        json.push('}');
    }
    json.push_str("]}");
    json.into_bytes()
}

/// Pull the `"code"` field back out of an ERR payload (clients report
/// it; tests assert on it). Scanning is enough: the field is always
/// first and its value is a known token that needs no unescaping.
pub fn err_code(payload: &[u8]) -> Option<&str> {
    let text = std::str::from_utf8(payload).ok()?;
    let rest = text.strip_prefix("{\"code\":\"")?;
    rest.split('"').next()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrips() {
        let bytes = frame_bytes(op::SUB, b"/a/b/text()");
        let frame = read_frame(&mut &bytes[..], MAX_FRAME).unwrap().unwrap();
        assert_eq!(frame.op, op::SUB);
        assert_eq!(frame.payload, b"/a/b/text()");
        assert!(read_frame(&mut &bytes[bytes.len()..], MAX_FRAME)
            .unwrap()
            .is_none());
    }

    #[test]
    fn empty_payload_roundtrips() {
        let bytes = frame_bytes(op::END_DOC, b"");
        let frame = read_frame(&mut &bytes[..], MAX_FRAME).unwrap().unwrap();
        assert_eq!(frame.op, op::END_DOC);
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let bytes = frame_bytes(op::FEED, &[b'x'; 64]);
        let err = read_frame(&mut &bytes[..], 16).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn zero_length_frame_is_rejected() {
        let bytes = 0u32.to_le_bytes();
        let err = read_frame(&mut &bytes[..], MAX_FRAME).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn torn_frame_is_unexpected_eof() {
        let bytes = frame_bytes(op::FEED, b"<doc>");
        for cut in 1..bytes.len() {
            let err = read_frame(&mut &bytes[..cut], MAX_FRAME).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn wire_bounds_roundtrip() {
        for b in [
            WireBound::Zero,
            WireBound::Items(7),
            WireBound::PerDepth(3),
            WireBound::Unbounded,
        ] {
            let mut buf = Vec::new();
            b.encode(&mut buf);
            assert_eq!(buf.len(), WireBound::SIZE);
            assert_eq!(WireBound::decode(&buf), Some(b));
        }
        assert_eq!(WireBound::decode(&[9; 9]), None);
        assert_eq!(WireBound::decode(&[0; 4]), None);
    }

    #[test]
    fn err_payload_carries_code_and_diagnostics() {
        let payload = err_payload(
            errcode::BAD_QUERY,
            "query 1: no such axis",
            &[ErrDiagnostic {
                severity: "error",
                code: "parse-error".into(),
                message: "no such axis \"child::\"".into(),
                step: Some(2),
            }],
        );
        let text = std::str::from_utf8(&payload).unwrap();
        assert!(text.contains("\"code\":\"bad-query\""));
        assert!(text.contains("\\\"child::\\\""));
        assert!(text.contains("\"step\":2"));
        assert_eq!(err_code(&payload), Some(errcode::BAD_QUERY));
    }
}
