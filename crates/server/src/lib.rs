//! # xsq-server — the streaming query server
//!
//! The paper evaluates XPath over data that *arrives as a stream*;
//! this crate supplies the network front end that makes that literal:
//! clients subscribe standing queries over TCP and push XML
//! incrementally, results stream back the moment their membership is
//! decided. Everything is `std`-only — `std::net` sockets plus the
//! fixed thread-pool patterns of `xsq_core::shard`; no async runtime,
//! no external crates.
//!
//! * [`proto`] — the length-prefixed binary framing (SUB / UNSUB /
//!   FEED / END-DOC / STAT / BYE requests; SUB_OK / RESULT / UPDATE /
//!   DOC_OK / STAT_OK / OK / ERR replies). The wire contract is
//!   specified in `DESIGN.md`.
//! * [`session`] — the per-connection state machine: a private
//!   [`xsq_core::QueryIndex`] partition fed through the zero-copy
//!   `RawEvent` path by a [`xsq_xml::PushParser`], so FEED chunks may
//!   split tokens, UTF-8 sequences, or `]]>` at any byte boundary.
//! * [`server`] — serving-model dispatch (event loop vs. threaded),
//!   bounded per-connection reply queues (backpressure), idle
//!   timeouts, graceful drain on shutdown.
//! * [`eventloop`] (Unix) — the readiness-based model: an epoll/poll
//!   poller over raw syscalls, wire-v2 session multiplexing, and
//!   broadcast fan-out through one shared [`xsq_core::QueryIndex`].
//! * [`client`] — the reference client: replays a corpus and renders
//!   replies byte-identically to the sequential in-process driver.

pub mod client;
#[cfg(unix)]
pub mod eventloop;
pub mod proto;
pub mod server;
pub mod session;

pub use client::{
    broadcast_feed, broadcast_subscribe, reference_output, run_corpus, stat_field_str,
    stat_field_u64, stat_transport_summary, ClientError, ClientReport, ConnectOptions, FeedOptions,
    FeedReport,
};
pub use proto::{read_frame, write_frame, Frame, WireBound, MAX_FRAME};
pub use server::{
    serve, BroadcastOptions, BroadcastPolicy, ServeModel, ServeOptions, ServerHandle,
};
pub use session::{Action, Outbox, Session, SessionLimits, SessionStats, TransportStats};
