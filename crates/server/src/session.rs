//! One client session: a protocol state machine around a
//! [`QueryIndex`] partition and a push-fed parser.
//!
//! The session is transport-agnostic — it consumes decoded
//! [`Frame`]s and emits reply frames through an [`Outbox`], so the
//! same state machine runs under the TCP server and under in-process
//! tests with no socket at all. Per connection it owns:
//!
//! * a private [`QueryIndex`] (sessions never share compiled state, so
//!   one slow client cannot stall another's dispatch),
//! * a [`PushParser`] fed FEED payloads exactly as they arrive off the
//!   wire — chunks may split tokens, multi-byte UTF-8 sequences, or
//!   `]]>` anywhere; the push layer guarantees the event stream is
//!   identical to a one-shot parse,
//! * the metrics reported by STAT.
//!
//! Subscription changes that arrive *mid-document* (between the first
//! FEED and its END-DOC) are deferred to the document boundary: the
//! ids are promised immediately (SUB_OK) after the queries are
//! validated, but the index only changes once the in-flight document
//! finishes, so a document's result set is always produced by one
//! consistent query set.

use std::sync::Arc;

use xsq_core::{
    CachedPlan, CompileError, MemoryBound, PlanCache, QueryId, QueryIndex, QuerySet, QuerySink,
    XsqEngine, XsqMode,
};
use xsq_xml::dtd::Dtd;
use xsq_xml::{ParsePoll, PushParser, StreamParser};

use crate::proto::{err_payload, errcode, json_escape, op, ErrDiagnostic, Frame, WireBound};

/// Per-session admission policy, shared by every connection of one
/// server: an optional per-subscription item budget and the schema the
/// bound analyzer proves it against.
#[derive(Debug, Clone, Default)]
pub struct SessionLimits {
    /// Reject any SUB whose static memory bound is not `Items(K ≤ max)`
    /// (or `Zero`). `None` admits everything.
    pub max_bound: Option<u64>,
    /// Schema for the bound analysis. Without one, every buffering
    /// query analyzes as `Unbounded` — so `max_bound` without a DTD
    /// admits only bufferless queries.
    pub dtd: Option<Arc<Dtd>>,
}

/// Where a session's reply frames go. The TCP server backs this with a
/// bounded queue to a writer thread (backpressure); tests back it with
/// a `Vec`.
pub trait Outbox {
    fn send(&mut self, op: u8, payload: &[u8]);
}

impl<F: FnMut(u8, &[u8])> Outbox for F {
    fn send(&mut self, op: u8, payload: &[u8]) {
        self(op, payload)
    }
}

/// What the transport should do after a frame is handled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep reading frames.
    Continue,
    /// Close the connection (after flushing queued replies).
    Close,
}

/// Emits RESULT/UPDATE frames as the engine determines results — the
/// streaming path: a result reaches the outbox (and from there the
/// wire) the moment its membership is decided, not at END-DOC.
struct FrameSink<'a> {
    out: &'a mut dyn Outbox,
    results: u64,
    updates: u64,
}

impl QuerySink for FrameSink<'_> {
    fn result(&mut self, id: QueryId, value: &str) {
        self.results += 1;
        let mut payload = Vec::with_capacity(4 + value.len());
        payload.extend_from_slice(&id.0.to_le_bytes());
        payload.extend_from_slice(value.as_bytes());
        self.out.send(op::RESULT, &payload);
    }

    fn aggregate_update(&mut self, id: QueryId, value: f64) {
        self.updates += 1;
        let mut payload = [0u8; 12];
        payload[..4].copy_from_slice(&id.0.to_le_bytes());
        payload[4..].copy_from_slice(&value.to_le_bytes());
        self.out.send(op::UPDATE, &payload);
    }
}

/// Session metrics (the STAT reply), accumulated across documents.
#[derive(Debug, Default, Clone)]
pub struct SessionStats {
    pub bytes_in: u64,
    pub frames_in: u64,
    pub docs: u32,
    pub results: u64,
    pub updates: u64,
    pub peak_buffered_bytes: u64,
    pub peak_configs: u64,
    /// Wall time spent inside FEED/END-DOC ingest (push + parse +
    /// dispatch), so STAT can report ingest MB/s and events/s without
    /// counting the client's think time between frames.
    pub ingest_nanos: u64,
}

/// Transport-level counters the serving layer injects before answering
/// STAT: the session state machine cannot see past its own connection,
/// so connection counts, logical-session counts, writer-queue high
/// water marks, and broadcast drop totals arrive from outside.
#[derive(Debug, Clone, Copy)]
pub struct TransportStats {
    /// Serving model name (`threaded`, `eventloop`, `broadcast`,
    /// `inproc` for a bare session).
    pub model: &'static str,
    /// Open TCP connections on the server.
    pub connections: u64,
    /// Logical sessions across all connections (≥ connections once
    /// clients multiplex).
    pub sessions: u64,
    /// Highest observed per-subscriber reply-queue depth (frames).
    pub queue_depth_hwm: u64,
    /// Broadcast frames dropped against slow subscribers (drop policy).
    pub dropped_broadcast: u64,
}

impl Default for TransportStats {
    fn default() -> Self {
        TransportStats {
            model: "inproc",
            connections: 0,
            sessions: 0,
            queue_depth_hwm: 0,
            dropped_broadcast: 0,
        }
    }
}

/// One SUB batch either compiled privately or checked out of the
/// shared plan cache; cached batches owe the cache a release once the
/// last member unsubscribes (or the session drops).
struct BatchRef {
    ids: Vec<QueryId>,
    live: usize,
    cache_key: Option<String>,
}

/// A SUB promised mid-document, applied at the next boundary.
struct PendingSub {
    texts: Vec<String>,
    /// Already checked out of the cache at SUB time (so the boundary
    /// application cannot fail and the reference is already counted).
    plan: Option<Arc<CachedPlan>>,
}

/// One connection's protocol state machine.
pub struct Session {
    engine: XsqEngine,
    index: QueryIndex,
    parser: PushParser,
    engine_name: &'static str,
    stats: SessionStats,
    /// A FEED arrived since the last document boundary.
    doc_active: bool,
    /// SUB batches promised mid-document, applied at the next boundary.
    pending_subs: Vec<PendingSub>,
    /// UNSUBs received mid-document, applied after pending subs.
    pending_unsubs: Vec<QueryId>,
    /// Ids promised to pending subs but not yet allocated by the index.
    promised: u32,
    limits: SessionLimits,
    /// Shared compiled-plan cache (the server wires one across every
    /// connection); `None` compiles privately, as before.
    cache: Option<Arc<PlanCache>>,
    /// Every batch this session subscribed, for cache accounting.
    batches: Vec<BatchRef>,
    transport: TransportStats,
}

impl Session {
    pub fn new(engine: XsqEngine) -> Session {
        Session::with_limits(engine, SessionLimits::default())
    }

    /// A session with an admission policy (`xsq serve --max-bound`).
    pub fn with_limits(engine: XsqEngine, limits: SessionLimits) -> Session {
        Session {
            engine,
            index: QueryIndex::new(engine),
            parser: StreamParser::push_mode(),
            engine_name: match engine.mode() {
                XsqMode::Full => "xsq-f",
                XsqMode::NoClosure => "xsq-nc",
            },
            stats: SessionStats::default(),
            doc_active: false,
            pending_subs: Vec::new(),
            pending_unsubs: Vec::new(),
            promised: 0,
            limits,
            cache: None,
            batches: Vec::new(),
            transport: TransportStats::default(),
        }
    }

    /// Route SUB compilation through a shared [`PlanCache`]. The cache
    /// must have been built with the same DTD as this session's limits,
    /// so cached bounds equal what the private path would compute.
    pub fn set_plan_cache(&mut self, cache: Arc<PlanCache>) {
        self.cache = Some(cache);
    }

    /// Inject transport-level counters for the next STAT reply.
    pub fn set_transport(&mut self, transport: TransportStats) {
        self.transport = transport;
    }

    /// A document is currently in flight (FEED seen, END-DOC not yet).
    /// The server uses this to decide how hard it may drain on
    /// shutdown.
    pub fn doc_active(&self) -> bool {
        self.doc_active
    }

    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Handle one decoded frame, emitting replies through `out`.
    pub fn handle_frame(&mut self, frame: &Frame, out: &mut dyn Outbox) -> Action {
        self.stats.frames_in += 1;
        match frame.op {
            op::SUB => self.on_sub(&frame.payload, out),
            op::UNSUB => self.on_unsub(&frame.payload, out),
            op::FEED => self.on_feed(&frame.payload, out),
            op::END_DOC => self.on_end_doc(out),
            op::STAT => {
                let json = self.stat_json();
                out.send(op::STAT_OK, json.as_bytes());
                Action::Continue
            }
            op::BYE => {
                out.send(op::OK, &[op::BYE]);
                Action::Close
            }
            other => {
                out.send(
                    op::ERR,
                    &err_payload(
                        errcode::UNKNOWN_OP,
                        &format!("unknown opcode 0x{other:02x}"),
                        &[],
                    ),
                );
                Action::Close
            }
        }
    }

    fn on_sub(&mut self, payload: &[u8], out: &mut dyn Outbox) -> Action {
        let Ok(text) = std::str::from_utf8(payload) else {
            out.send(
                op::ERR,
                &err_payload(errcode::PROTOCOL, "SUB payload is not UTF-8", &[]),
            );
            return Action::Continue;
        };
        let queries: Vec<&str> = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        if queries.is_empty() {
            out.send(
                op::ERR,
                &err_payload(errcode::BAD_QUERY, "SUB carried no queries", &[]),
            );
            return Action::Continue;
        }
        // Validate the whole batch up front, so a promised id can never
        // fail later. With a shared cache the validation *is* the
        // checkout: the first connection to ask compiles, everyone
        // after shares the plan (and its precomputed bounds).
        let plan: Option<Arc<CachedPlan>> = match &self.cache {
            Some(cache) => match cache.checkout(self.engine, &queries) {
                Ok(plan) => Some(plan),
                Err((i, e)) => {
                    out.send(
                        op::ERR,
                        &err_payload(
                            errcode::BAD_QUERY,
                            &format!("query {} ({}): {e}", i + 1, queries[i]),
                            &query_diagnostics(queries[i], &e),
                        ),
                    );
                    return Action::Continue;
                }
            },
            None => {
                if let Err((i, e)) = QuerySet::compile(self.engine, &queries) {
                    out.send(
                        op::ERR,
                        &err_payload(
                            errcode::BAD_QUERY,
                            &format!("query {} ({}): {e}", i + 1, queries[i]),
                            &query_diagnostics(queries[i], &e),
                        ),
                    );
                    return Action::Continue;
                }
                None
            }
        };
        // Admission control: every query's static memory bound is
        // computed before any id is promised, so a rejected batch
        // changes nothing (recoverable ERR, session stays usable).
        let dtd = self.limits.dtd.as_deref();
        let bounds: Vec<MemoryBound> = match &plan {
            Some(plan) => plan.bounds().to_vec(),
            None => queries
                .iter()
                .map(|q| query_bound(self.engine, q, dtd))
                .collect(),
        };
        if let Some(budget) = self.limits.max_bound {
            if let Some(i) = bounds.iter().position(|b| !b.admits(budget)) {
                if let (Some(plan), Some(cache)) = (&plan, &self.cache) {
                    cache.release(plan.key());
                }
                out.send(
                    op::ERR,
                    &err_payload(
                        errcode::OVER_BUDGET,
                        &format!(
                            "query {} ({}): static memory bound {} exceeds the \
                             server budget of {budget} buffered item(s)",
                            i + 1,
                            queries[i],
                            bounds[i],
                        ),
                        &bound_diagnostics(queries[i], dtd),
                    ),
                );
                return Action::Continue;
            }
        }
        let ids: Vec<QueryId> = if self.doc_active {
            let base = self.index.len() as u32 + self.promised;
            let ids: Vec<QueryId> = (0..queries.len() as u32)
                .map(|k| QueryId(base + k))
                .collect();
            self.promised += queries.len() as u32;
            self.pending_subs.push(PendingSub {
                texts: queries.iter().map(|q| q.to_string()).collect(),
                plan: plan.clone(),
            });
            ids
        } else {
            let subscribed = match &plan {
                Some(plan) => Ok(self.index.subscribe_plan(plan)),
                None => self.index.subscribe_group(&queries),
            };
            match subscribed {
                Ok(ids) => {
                    self.batches.push(BatchRef {
                        live: ids.len(),
                        ids: ids.clone(),
                        cache_key: plan.as_ref().map(|p| p.key().to_string()),
                    });
                    ids
                }
                Err(e) => {
                    // Unreachable after validation, but never trust it.
                    out.send(
                        op::ERR,
                        &err_payload(errcode::BAD_QUERY, &e.to_string(), &[]),
                    );
                    return Action::Continue;
                }
            }
        };
        // SUB_OK: count, ids, then one WireBound per query (clients that
        // predate the bounds read only count + ids and ignore the tail).
        let mut reply = Vec::with_capacity(4 + (4 + WireBound::SIZE) * ids.len());
        reply.extend_from_slice(&(ids.len() as u32).to_le_bytes());
        for id in &ids {
            reply.extend_from_slice(&id.0.to_le_bytes());
        }
        for bound in &bounds {
            wire_bound(bound).encode(&mut reply);
        }
        out.send(op::SUB_OK, &reply);
        Action::Continue
    }

    fn on_unsub(&mut self, payload: &[u8], out: &mut dyn Outbox) -> Action {
        let Ok(bytes) = <[u8; 4]>::try_from(payload) else {
            out.send(
                op::ERR,
                &err_payload(errcode::PROTOCOL, "UNSUB payload must be a u32 id", &[]),
            );
            return Action::Continue;
        };
        let id = QueryId(u32::from_le_bytes(bytes));
        if id.0 >= self.index.len() as u32 + self.promised {
            out.send(
                op::ERR,
                &err_payload(
                    errcode::BAD_ID,
                    &format!("query id {} was never issued", id.0),
                    &[],
                ),
            );
            return Action::Continue;
        }
        if self.doc_active {
            self.pending_unsubs.push(id);
        } else {
            self.apply_unsub(id);
        }
        out.send(op::OK, &[op::UNSUB]);
        Action::Continue
    }

    /// Unsubscribe `id` and keep the plan-cache accounting straight:
    /// when the last live member of a cached batch goes away, the
    /// cache reference is released (evicting the compiled plan if this
    /// was its last subscriber anywhere).
    fn apply_unsub(&mut self, id: QueryId) {
        if !self.index.unsubscribe(id) {
            return;
        }
        let Some(batch) = self.batches.iter_mut().find(|b| b.ids.contains(&id)) else {
            return;
        };
        batch.live = batch.live.saturating_sub(1);
        if batch.live == 0 {
            if let (Some(key), Some(cache)) = (batch.cache_key.take(), self.cache.as_ref()) {
                cache.release(&key);
            }
        }
    }

    fn on_feed(&mut self, payload: &[u8], out: &mut dyn Outbox) -> Action {
        self.doc_active = true;
        self.stats.bytes_in += payload.len() as u64;
        let t0 = std::time::Instant::now();
        self.parser.push(payload);
        let action = self.pump(out);
        self.stats.ingest_nanos += t0.elapsed().as_nanos() as u64;
        action
    }

    fn on_end_doc(&mut self, out: &mut dyn Outbox) -> Action {
        if !self.doc_active {
            out.send(
                op::ERR,
                &err_payload(errcode::PROTOCOL, "END-DOC without any FEED", &[]),
            );
            return Action::Continue;
        }
        let t0 = std::time::Instant::now();
        self.parser.finish();
        let drained = self.pump(out);
        self.stats.ingest_nanos += t0.elapsed().as_nanos() as u64;
        if drained == Action::Close {
            return Action::Close;
        }
        let mut sink = FrameSink {
            out,
            results: 0,
            updates: 0,
        };
        let run = self.index.finish(&mut sink);
        self.stats.results += sink.results;
        self.stats.updates += sink.updates;
        self.stats.peak_buffered_bytes = self.stats.peak_buffered_bytes.max(run.memory.peak_bytes);
        self.stats.peak_configs = self.stats.peak_configs.max(run.memory.peak_configs);
        out.send(op::DOC_OK, &self.stats.docs.to_le_bytes());
        self.stats.docs += 1;
        self.doc_active = false;
        self.parser.reset_push();
        // Deferred subscription changes: promised subs first (their ids
        // must exist before an interleaved UNSUB can name them).
        for batch in std::mem::take(&mut self.pending_subs) {
            let ids = match &batch.plan {
                // The checkout at SUB time already validated and
                // counted the reference; applying it cannot fail.
                Some(plan) => self.index.subscribe_plan(plan),
                None => {
                    let texts: Vec<&str> = batch.texts.iter().map(String::as_str).collect();
                    match self.index.subscribe_group(&texts) {
                        Ok(ids) => ids,
                        Err(e) => {
                            out.send(
                                op::ERR,
                                &err_payload(
                                    errcode::BAD_QUERY,
                                    &format!("deferred subscription failed: {e}"),
                                    &[],
                                ),
                            );
                            return Action::Close;
                        }
                    }
                }
            };
            self.batches.push(BatchRef {
                live: ids.len(),
                ids,
                cache_key: batch.plan.as_ref().map(|p| p.key().to_string()),
            });
        }
        self.promised = 0;
        for id in std::mem::take(&mut self.pending_unsubs) {
            self.apply_unsub(id);
        }
        Action::Continue
    }

    /// Drain every event the parser can currently produce into the
    /// index. A parse error is fatal for the session: the byte stream
    /// position is unrecoverable, so the client gets one framed error
    /// (fail-fast, like the sharded driver's lowest-doc report) and
    /// the connection closes.
    fn pump(&mut self, out: &mut dyn Outbox) -> Action {
        let mut sink = FrameSink {
            out,
            results: 0,
            updates: 0,
        };
        let Session { index, parser, .. } = self;
        let failed = loop {
            match parser.poll_raw() {
                Ok(ParsePoll::Event(ev)) => index.feed_raw(&ev, &mut sink),
                Ok(ParsePoll::NeedMore) | Ok(ParsePoll::End) => break None,
                Err(e) => break Some(e),
            }
        };
        self.stats.results += sink.results;
        self.stats.updates += sink.updates;
        match failed {
            None => Action::Continue,
            Some(e) => {
                out.send(
                    op::ERR,
                    &err_payload(
                        errcode::PARSE,
                        &format!("document {}: {e}", self.stats.docs),
                        &[],
                    ),
                );
                Action::Close
            }
        }
    }

    /// The STAT reply: RunReport-style counters plus wire totals and
    /// ingest throughput (bytes and events over time spent inside
    /// FEED/END-DOC handling, so kernel wins show up per session).
    fn stat_json(&self) -> String {
        let secs = self.stats.ingest_nanos as f64 / 1e9;
        let (mb_per_sec, events_per_sec) = if secs > 0.0 {
            (
                self.stats.bytes_in as f64 / (1024.0 * 1024.0) / secs,
                self.index.events() as f64 / secs,
            )
        } else {
            (0.0, 0.0)
        };
        let cache = self.cache.as_ref().map(|c| c.stats()).unwrap_or_default();
        format!(
            "{{\"engine\":\"{}\",\"queries\":{},\"active\":{},\"groups\":{},\
             \"docs\":{},\"doc_active\":{},\"events\":{},\"touches\":{},\
             \"results\":{},\"updates\":{},\"peak_buffered_bytes\":{},\
             \"peak_configs\":{},\"bytes_in\":{},\"frames_in\":{},\
             \"ingest_mb_per_sec\":{:.2},\"events_per_sec\":{:.0},\
             \"model\":\"{}\",\"connections\":{},\"sessions\":{},\
             \"queue_depth_hwm\":{},\"dropped_broadcast\":{},\
             \"plan_cache_entries\":{},\"plan_cache_hits\":{},\
             \"plan_cache_misses\":{},\"kernel\":\"{}\"}}",
            json_escape(self.engine_name),
            self.index.len(),
            self.index.active_len(),
            self.index.group_count(),
            self.stats.docs,
            self.doc_active,
            self.index.events(),
            self.index.touches(),
            self.stats.results,
            self.stats.updates,
            self.stats.peak_buffered_bytes,
            self.stats.peak_configs,
            self.stats.bytes_in,
            self.stats.frames_in,
            mb_per_sec,
            events_per_sec,
            json_escape(self.transport.model),
            self.transport.connections,
            self.transport.sessions,
            self.transport.queue_depth_hwm,
            self.transport.dropped_broadcast,
            cache.entries,
            cache.hits,
            cache.misses,
            xsq_xml::scan::active_kernel(),
        )
    }
}

impl Drop for Session {
    /// A vanished connection must not pin cache entries: every batch
    /// still holding a cache reference (including ones promised but
    /// never applied) releases it here.
    fn drop(&mut self) {
        let Some(cache) = &self.cache else { return };
        for batch in &mut self.batches {
            if batch.live > 0 {
                if let Some(key) = batch.cache_key.take() {
                    cache.release(&key);
                }
            }
        }
        for pending in self.pending_subs.drain(..) {
            if let Some(plan) = pending.plan {
                cache.release(plan.key());
            }
        }
    }
}

/// The static bound of one already-validated query. Validation happened
/// a moment ago, so a compile failure here is a defensive fiction: it
/// maps to `Unbounded`, which every budget rejects.
fn query_bound(engine: XsqEngine, query: &str, dtd: Option<&Dtd>) -> MemoryBound {
    match engine.compile_str_with_dtd(query, dtd) {
        Ok(c) => c.bound().clone(),
        Err(e) => MemoryBound::Unbounded {
            reason: format!("bound analysis failed: {e}"),
            span: xsq_xpath::Span::new(0, 0),
        },
    }
}

/// Diagnostics for an over-budget rejection: the analyzer's full
/// derivation trace, so the client sees *why* the bound is what it is
/// (which multiplicity is starred, which step stays undecided).
pub(crate) fn bound_diagnostics(query: &str, dtd: Option<&Dtd>) -> Vec<ErrDiagnostic> {
    let Ok(parsed) = xsq_xpath::parse_query(query) else {
        return Vec::new();
    };
    let Ok(analysis) = xsq_core::analyze_with_dtd(&parsed, dtd) else {
        return Vec::new();
    };
    let mut out = vec![ErrDiagnostic {
        severity: "error",
        code: "memory-bound".into(),
        message: format!("static memory bound: {}", analysis.bound.bound),
        step: None,
    }];
    out.extend(analysis.bound.trace.iter().map(|s| ErrDiagnostic {
        severity: "info",
        code: s.rule.to_string(),
        message: s.detail.clone(),
        step: None,
    }));
    out
}

/// `MemoryBound` → its wire form (the derivation stays server-side;
/// SUB_OK carries only the verdict).
pub(crate) fn wire_bound(bound: &MemoryBound) -> WireBound {
    match bound {
        MemoryBound::Zero => WireBound::Zero,
        MemoryBound::Items(k) => WireBound::Items(*k),
        MemoryBound::PerDepth(k) => WireBound::PerDepth(*k),
        MemoryBound::Unbounded { .. } => WireBound::Unbounded,
    }
}

/// Analyzer-backed diagnostics for a rejected SUB: the compile error
/// itself first, then whatever the static analyzer can add (it sees
/// queries that parse but misbuild; a parse failure carries only the
/// parser's message).
pub(crate) fn query_diagnostics(query: &str, error: &CompileError) -> Vec<ErrDiagnostic> {
    let mut out = vec![ErrDiagnostic {
        severity: "error",
        code: "compile-error".into(),
        message: error.to_string(),
        step: None,
    }];
    if let Ok(parsed) = xsq_xpath::parse_query(query) {
        if let Ok(analysis) = xsq_core::analyze(&parsed) {
            out.extend(analysis.diagnostics.iter().map(|d| ErrDiagnostic {
                severity: d.severity.label(),
                code: d.code.to_string(),
                message: d.message.clone(),
                step: d.step,
            }));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::err_code;

    fn sub_frame(queries: &str) -> Frame {
        Frame {
            op: op::SUB,
            payload: queries.as_bytes().to_vec(),
        }
    }

    fn feed_frame(bytes: &[u8]) -> Frame {
        Frame {
            op: op::FEED,
            payload: bytes.to_vec(),
        }
    }

    const END: Frame = Frame {
        op: op::END_DOC,
        payload: Vec::new(),
    };

    fn drive(session: &mut Session, frames: &[Frame]) -> Vec<(u8, Vec<u8>)> {
        let mut out: Vec<(u8, Vec<u8>)> = Vec::new();
        for f in frames {
            let mut sink = |op: u8, payload: &[u8]| out.push((op, payload.to_vec()));
            session.handle_frame(f, &mut sink);
        }
        out
    }

    fn results_of(replies: &[(u8, Vec<u8>)]) -> Vec<(u32, String)> {
        replies
            .iter()
            .filter(|(o, _)| *o == op::RESULT)
            .map(|(_, p)| {
                (
                    u32::from_le_bytes(p[..4].try_into().unwrap()),
                    String::from_utf8(p[4..].to_vec()).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn subscribe_feed_and_finish_streams_results() {
        let mut session = Session::new(XsqEngine::full());
        let doc = b"<pub><book><name>N</name></book><year>2002</year></pub>";
        let replies = drive(
            &mut session,
            &[
                sub_frame("//pub[year=2002]//name/text()"),
                feed_frame(doc),
                END,
            ],
        );
        assert_eq!(replies[0].0, op::SUB_OK);
        assert_eq!(results_of(&replies), [(0, "N".to_string())]);
        assert!(replies.iter().any(|(o, _)| *o == op::DOC_OK));
        assert_eq!(session.stats().docs, 1);
    }

    #[test]
    fn one_byte_feeds_match_single_feed() {
        let doc: &[u8] =
            "<pub a=\"x\"><b>caf\u{e9} \u{1F680}</b><b><![CDATA[x]]y]]></b></pub>".as_bytes();
        let queries = "/pub/b/text()\n//b/count()";
        let whole = {
            let mut s = Session::new(XsqEngine::full());
            drive(&mut s, &[sub_frame(queries), feed_frame(doc), END])
        };
        let torn = {
            let mut s = Session::new(XsqEngine::full());
            let mut frames = vec![sub_frame(queries)];
            frames.extend(doc.iter().map(|b| feed_frame(&[*b])));
            frames.push(END);
            drive(&mut s, &frames)
        };
        let payload_frames = |r: &[(u8, Vec<u8>)]| {
            r.iter()
                .filter(|(o, _)| matches!(*o, op::RESULT | op::UPDATE | op::DOC_OK))
                .cloned()
                .collect::<Vec<_>>()
        };
        assert_eq!(payload_frames(&whole), payload_frames(&torn));
    }

    #[test]
    fn bad_query_gets_machine_readable_error() {
        let mut session = Session::new(XsqEngine::full());
        let replies = drive(&mut session, &[sub_frame("/a[")]);
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].0, op::ERR);
        assert_eq!(err_code(&replies[0].1), Some(errcode::BAD_QUERY));
        let text = std::str::from_utf8(&replies[0].1).unwrap();
        assert!(text.contains("\"diagnostics\":["), "payload: {text}");
        // The session survives a rejected SUB.
        let replies = drive(&mut session, &[sub_frame("/a/text()")]);
        assert_eq!(replies[0].0, op::SUB_OK);
    }

    #[test]
    fn closure_on_nc_engine_is_rejected() {
        let mut session = Session::new(XsqEngine::no_closure());
        let replies = drive(&mut session, &[sub_frame("//a/text()")]);
        assert_eq!(replies[0].0, op::ERR);
        assert_eq!(err_code(&replies[0].1), Some(errcode::BAD_QUERY));
    }

    #[test]
    fn sub_during_feed_defers_to_next_document() {
        let mut session = Session::new(XsqEngine::full());
        let doc = b"<a><b>one</b></a>";
        let replies = drive(
            &mut session,
            &[
                sub_frame("/a/b/text()"),
                feed_frame(&doc[..5]),
                // Mid-document: promised id 1, active from the next doc.
                sub_frame("//b/text()"),
                feed_frame(&doc[5..]),
                END,
            ],
        );
        let sub_oks: Vec<_> = replies.iter().filter(|(o, _)| *o == op::SUB_OK).collect();
        assert_eq!(sub_oks.len(), 2);
        assert_eq!(
            u32::from_le_bytes(sub_oks[1].1[4..8].try_into().unwrap()),
            1
        );
        // Document 1 saw only query 0.
        assert_eq!(results_of(&replies), [(0, "one".to_string())]);
        // Document 2 is served by both.
        let replies = drive(&mut session, &[feed_frame(doc), END]);
        assert_eq!(
            results_of(&replies),
            [(0, "one".to_string()), (1, "one".to_string())]
        );
    }

    #[test]
    fn unsub_during_feed_defers_to_next_document() {
        let mut session = Session::new(XsqEngine::full());
        let doc = b"<a><b>one</b></a>";
        let unsub = Frame {
            op: op::UNSUB,
            payload: 0u32.to_le_bytes().to_vec(),
        };
        let replies = drive(
            &mut session,
            &[
                sub_frame("/a/b/text()"),
                feed_frame(&doc[..5]),
                unsub,
                feed_frame(&doc[5..]),
                END,
            ],
        );
        // The in-flight document still answers the query…
        assert_eq!(results_of(&replies), [(0, "one".to_string())]);
        // …and the next one no longer does.
        let replies = drive(&mut session, &[feed_frame(doc), END]);
        assert_eq!(results_of(&replies), []);
    }

    #[test]
    fn malformed_document_is_fatal_with_parse_error() {
        let mut session = Session::new(XsqEngine::full());
        let replies = drive(
            &mut session,
            &[sub_frame("/a/text()"), feed_frame(b"<a><b></a>"), END],
        );
        let err = replies
            .iter()
            .find(|(o, _)| *o == op::ERR)
            .expect("ERR frame");
        assert_eq!(err_code(&err.1), Some(errcode::PARSE));
        assert!(!replies.iter().any(|(o, _)| *o == op::DOC_OK));
    }

    #[test]
    fn stat_reports_counters_as_json() {
        let mut session = Session::new(XsqEngine::full());
        let replies = drive(
            &mut session,
            &[
                sub_frame("//b/count()"),
                feed_frame(b"<a><b/><b/></a>"),
                END,
                Frame {
                    op: op::STAT,
                    payload: Vec::new(),
                },
            ],
        );
        let stat = replies.iter().find(|(o, _)| *o == op::STAT_OK).unwrap();
        let json = std::str::from_utf8(&stat.1).unwrap();
        for needle in [
            "\"engine\":\"xsq-f\"",
            "\"docs\":1",
            "\"results\":1",
            "\"bytes_in\":15",
            "\"frames_in\":",
            "\"peak_configs\":",
            "\"ingest_mb_per_sec\":",
            "\"events_per_sec\":",
            "\"kernel\":\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    fn dblp_dtd() -> Arc<Dtd> {
        Arc::new(
            Dtd::parse(
                "<!ELEMENT dblp ((article | inproceedings)*)>\
                 <!ELEMENT article (author*, title, year, pages)>\
                 <!ELEMENT inproceedings (author*, title, year, pages, booktitle?)>\
                 <!ELEMENT author (#PCDATA)> <!ELEMENT title (#PCDATA)>\
                 <!ELEMENT year (#PCDATA)> <!ELEMENT pages (#PCDATA)>\
                 <!ELEMENT booktitle (#PCDATA)>",
            )
            .unwrap(),
        )
    }

    fn sub_ok_bounds(payload: &[u8]) -> Vec<WireBound> {
        let count = u32::from_le_bytes(payload[..4].try_into().unwrap()) as usize;
        let tail = &payload[4 + 4 * count..];
        (0..count)
            .map(|i| WireBound::decode(&tail[i * WireBound::SIZE..]).unwrap())
            .collect()
    }

    #[test]
    fn sub_ok_carries_per_query_bounds() {
        let mut session = Session::with_limits(
            XsqEngine::full(),
            SessionLimits {
                max_bound: None,
                dtd: Some(dblp_dtd()),
            },
        );
        let replies = drive(
            &mut session,
            &[sub_frame(
                "/a/b/text()\n/dblp/inproceedings[author]/title/text()\n\
                 /dblp/inproceedings[booktitle]/author/text()",
            )],
        );
        assert_eq!(replies[0].0, op::SUB_OK);
        assert_eq!(
            sub_ok_bounds(&replies[0].1),
            [WireBound::Zero, WireBound::Items(1), WireBound::Unbounded]
        );
        // Without a DTD the buffering query stays unbounded.
        let mut bare = Session::new(XsqEngine::full());
        let replies = drive(
            &mut bare,
            &[sub_frame("/dblp/inproceedings[author]/title/text()")],
        );
        assert_eq!(sub_ok_bounds(&replies[0].1), [WireBound::Unbounded]);
    }

    #[test]
    fn over_budget_sub_is_rejected_recoverably() {
        let mut session = Session::with_limits(
            XsqEngine::full(),
            SessionLimits {
                max_bound: Some(0),
                dtd: Some(dblp_dtd()),
            },
        );
        // Items(1) > budget 0 → rejected with the analyzer's derivation.
        let replies = drive(
            &mut session,
            &[sub_frame("/dblp/inproceedings[author]/title/text()")],
        );
        assert_eq!(replies[0].0, op::ERR);
        assert_eq!(err_code(&replies[0].1), Some(errcode::OVER_BUDGET));
        let text = std::str::from_utf8(&replies[0].1).unwrap();
        assert!(text.contains("memory-bound"), "{text}");
        assert!(text.contains("outermost-undecided-step"), "{text}");
        // The session survives and still admits bufferless queries…
        let replies = drive(
            &mut session,
            &[
                sub_frame("/dblp/article/title/text()"),
                feed_frame(b"<dblp><article><title>T</title></article></dblp>"),
                END,
            ],
        );
        assert_eq!(replies[0].0, op::SUB_OK);
        assert_eq!(results_of(&replies), [(0, "T".to_string())]);
        // …and the rejected batch promised no ids: the admitted query
        // got id 0.
    }

    #[test]
    fn budget_admits_items_within_it() {
        let mut session = Session::with_limits(
            XsqEngine::full(),
            SessionLimits {
                max_bound: Some(1),
                dtd: Some(dblp_dtd()),
            },
        );
        let replies = drive(
            &mut session,
            &[sub_frame("/dblp/inproceedings[author]/title/text()")],
        );
        assert_eq!(replies[0].0, op::SUB_OK);
        assert_eq!(sub_ok_bounds(&replies[0].1), [WireBound::Items(1)]);
    }

    #[test]
    fn a_rejected_batch_rejects_wholesale() {
        // One admissible + one over-budget query in a single SUB: the
        // whole batch is refused and no id is allocated.
        let mut session = Session::with_limits(
            XsqEngine::full(),
            SessionLimits {
                max_bound: Some(8),
                dtd: Some(dblp_dtd()),
            },
        );
        let replies = drive(
            &mut session,
            &[sub_frame(
                "/a/b/text()\n/dblp/inproceedings[booktitle]/author/text()",
            )],
        );
        assert_eq!(replies[0].0, op::ERR);
        assert_eq!(err_code(&replies[0].1), Some(errcode::OVER_BUDGET));
        let replies = drive(&mut session, &[sub_frame("/a/b/text()")]);
        assert_eq!(replies[0].0, op::SUB_OK);
        assert_eq!(
            u32::from_le_bytes(replies[0].1[4..8].try_into().unwrap()),
            0,
            "rejected batch must not consume ids"
        );
    }

    #[test]
    fn unknown_opcode_closes_the_session() {
        let mut session = Session::new(XsqEngine::full());
        let mut out: Vec<(u8, Vec<u8>)> = Vec::new();
        let mut sink = |op: u8, payload: &[u8]| out.push((op, payload.to_vec()));
        let action = session.handle_frame(
            &Frame {
                op: 0x7E,
                payload: Vec::new(),
            },
            &mut sink,
        );
        assert_eq!(action, Action::Close);
        assert_eq!(err_code(&out[0].1), Some(errcode::UNKNOWN_OP));
    }
}
