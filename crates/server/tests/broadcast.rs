//! Broadcast mode: one feeder, one shared `QueryIndex`, many
//! subscribers — identity against the sequential driver, join-at-
//! boundary activation, slow-reader policies, and feeder-loss
//! poisoning.

#![cfg(unix)]

use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use xsq_core::XsqEngine;
use xsq_server::proto::{errcode, frame_bytes, op, read_frame};
use xsq_server::{
    broadcast_feed, broadcast_subscribe, reference_output, serve, stat_field_u64, BroadcastOptions,
    BroadcastPolicy, FeedOptions, ServeOptions, MAX_FRAME,
};

const FIG1: &str = r#"<pub><name>PrenticeHall</name><book id="1">
<name>First</name><author>A1</author><price>55.00</price></book>
<book id="2"><name>Second</name><author>A2</author><author>A3</author>
<price>21.50</price></book><year>2002</year></pub>"#;

const RECURSIVE: &str = r#"<pub><pub><book id="7"><name>Inner</name>
<author>X</author><price>9.99</price></book><year>2003</year></pub>
<book id="8"><name>Outer</name><price>12.00</price></book>
<year>2001</year></pub>"#;

fn corpus() -> Vec<Vec<u8>> {
    vec![
        FIG1.as_bytes().to_vec(),
        RECURSIVE.as_bytes().to_vec(),
        FIG1.as_bytes().to_vec(),
    ]
}

fn start_broadcast(queue: usize, policy: BroadcastPolicy) -> xsq_server::ServerHandle {
    let mut opts = ServeOptions::new("127.0.0.1:0");
    opts.idle_timeout = Duration::from_secs(30);
    opts.broadcast = Some(BroadcastOptions { queue, policy });
    serve(opts).expect("server binds")
}

/// The acceptance gate: 256 concurrent subscribers on one shared
/// index, every one of them byte-identical to a solo sequential run
/// of its own query batch.
#[test]
fn broadcast_serves_256_subscribers_byte_identically() {
    let server = start_broadcast(1024, BroadcastPolicy::Block);
    let addr = server.addr().to_string();
    let docs = corpus();

    // Four distinct SUB batches cycle across 256 subscribers: the hub
    // shares one plan + one set of index subscriptions per batch.
    let batches: [&[&str]; 4] = [
        &["//book/name/text()", "//price/sum()"],
        &["//book/@id"],
        &["//pub//book[price<30]/price/text()", "//book/count()"],
        &["//name/text()"],
    ];
    let expected: Vec<String> = batches
        .iter()
        .map(|qs| reference_output(XsqEngine::full(), qs, &docs, true).unwrap())
        .collect();

    const SUBS: usize = 256;
    let threads: Vec<_> = (0..SUBS)
        .map(|i| {
            let addr = addr.clone();
            let queries: Vec<String> = batches[i % 4].iter().map(|s| s.to_string()).collect();
            let n_docs = docs.len();
            std::thread::spawn(move || {
                let queries: Vec<&str> = queries.iter().map(String::as_str).collect();
                let mut out = Vec::new();
                let report = broadcast_subscribe(&addr, &queries, n_docs, true, &mut out)
                    .expect("subscriber completes");
                assert_eq!(report.docs, n_docs);
                (i, String::from_utf8(out).unwrap())
            })
        })
        .collect();

    let fopts = FeedOptions {
        chunk: 113, // torn token boundaries for everyone at once
        wait_subs: Some(SUBS as u64),
        want_stats: true,
    };
    let feed = broadcast_feed(&addr, &docs, &fopts).expect("feed completes");
    assert_eq!(feed.docs, docs.len());
    let stats = feed.stats_json.expect("STAT after feed");
    assert_eq!(stat_field_u64(&stats, "docs"), Some(docs.len() as u64));
    assert_eq!(stat_field_u64(&stats, "dropped_broadcast"), Some(0));

    for t in threads {
        let (i, got) = t.join().expect("subscriber thread");
        assert_eq!(got, expected[i % 4], "subscriber {i} diverged");
    }
    server.shutdown();
}

/// A subscriber that joins mid-document activates at the next
/// boundary and numbers its documents from zero — exactly what a
/// fresh solo session would see.
#[test]
fn mid_stream_join_defers_to_next_document_boundary() {
    let server = start_broadcast(1024, BroadcastPolicy::Block);
    let addr = server.addr().to_string();

    // Raw feeder so the test controls exactly when a document is open.
    let feeder = TcpStream::connect(&addr).unwrap();
    feeder.set_nodelay(true).unwrap();
    feeder
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let mut freader = BufReader::new(feeder.try_clone().unwrap());
    let mut fwriter = feeder;
    let send = |w: &mut TcpStream, opc: u8, p: &[u8]| {
        w.write_all(&frame_bytes(opc, p)).unwrap();
        w.flush().unwrap();
    };
    send(&mut fwriter, op::FEEDER, &[]);
    let ok = read_frame(&mut freader, MAX_FRAME).unwrap().unwrap();
    assert_eq!(ok.op, op::OK);

    // Document 0 is half-fed when the subscriber arrives.
    let half = FIG1.len() / 2;
    send(&mut fwriter, op::FEED, &FIG1.as_bytes()[..half]);

    let queries = ["//book/name/text()"];
    let sub = std::thread::spawn({
        let addr = addr.clone();
        move || {
            let mut out = Vec::new();
            let report = broadcast_subscribe(&addr, &queries, 1, false, &mut out).unwrap();
            (report, String::from_utf8(out).unwrap())
        }
    });
    // Wait until the hub has registered the subscription (STAT over
    // the feeder connection sees the shared hub state).
    loop {
        send(&mut fwriter, op::STAT, &[]);
        let f = read_frame(&mut freader, MAX_FRAME).unwrap().unwrap();
        assert_eq!(f.op, op::STAT_OK);
        let json = String::from_utf8(f.payload).unwrap();
        if stat_field_u64(&json, "subscribers") == Some(1) {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // Finish document 0 — the subscriber must see none of it — then
    // feed document 1, which becomes the subscriber's document 0.
    send(&mut fwriter, op::FEED, &FIG1.as_bytes()[half..]);
    send(&mut fwriter, op::END_DOC, &[]);
    let ack = read_frame(&mut freader, MAX_FRAME).unwrap().unwrap();
    assert_eq!(ack.op, op::DOC_OK);
    assert_eq!(ack.payload, 0u32.to_le_bytes());

    send(&mut fwriter, op::FEED, RECURSIVE.as_bytes());
    send(&mut fwriter, op::END_DOC, &[]);
    let ack = read_frame(&mut freader, MAX_FRAME).unwrap().unwrap();
    assert_eq!(ack.op, op::DOC_OK);
    assert_eq!(ack.payload, 1u32.to_le_bytes());

    let (report, got) = sub.join().unwrap();
    assert_eq!(report.docs, 1);
    let expect =
        reference_output(XsqEngine::full(), &queries, &[RECURSIVE.as_bytes()], false).unwrap();
    assert_eq!(got, expect, "late joiner must see doc 1 as its doc 0");
    server.shutdown();
}

/// A corpus big enough that a non-reading subscriber must overflow
/// both its server-side queue and the socket buffers.
fn heavy_corpus() -> (Vec<Vec<u8>>, Vec<u8>) {
    let mut doc = String::from("<pub>");
    for i in 0..2000 {
        doc.push_str(&format!(
            "<book id=\"{i}\"><name>{}</name></book>",
            "x".repeat(500)
        ));
    }
    doc.push_str("</pub>");
    let doc = doc.into_bytes();
    ((0..8).map(|_| doc.clone()).collect(), doc)
}

/// Drop policy: a subscriber that stops reading loses RESULT frames
/// (counted) but never DOC_OK — the protocol stays consistent and the
/// feeder is never stalled.
#[test]
fn slow_reader_under_drop_policy_loses_results_not_boundaries() {
    let server = start_broadcast(8, BroadcastPolicy::Drop);
    let addr = server.addr().to_string();
    let (docs, _) = heavy_corpus();

    // A raw, deliberately slow subscriber: subscribes, then does not
    // read until the whole corpus has been fed.
    let slow = TcpStream::connect(&addr).unwrap();
    slow.set_nodelay(true).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut sreader = BufReader::new(slow.try_clone().unwrap());
    let mut swriter = slow;
    swriter
        .write_all(&frame_bytes(op::SUB, b"//book/name/text()"))
        .unwrap();
    swriter.flush().unwrap();
    let subok = read_frame(&mut sreader, MAX_FRAME).unwrap().unwrap();
    assert_eq!(subok.op, op::SUB_OK);

    let fopts = FeedOptions {
        chunk: 64 * 1024,
        wait_subs: Some(1),
        want_stats: true,
    };
    let feed = broadcast_feed(&addr, &docs, &fopts).expect("feeder never blocks under drop");
    let stats = feed.stats_json.expect("STAT");
    let dropped = stat_field_u64(&stats, "dropped_broadcast").unwrap_or(0);
    assert!(dropped > 0, "expected drops, stats: {stats}");

    // Now drain: every DOC_OK must still be there, in order.
    let mut doc_oks = 0u32;
    let mut results = 0u64;
    while doc_oks < docs.len() as u32 {
        let f = read_frame(&mut sreader, MAX_FRAME).unwrap().unwrap();
        match f.op {
            op::RESULT => results += 1,
            op::DOC_OK => {
                assert_eq!(f.payload, doc_oks.to_le_bytes(), "boundary out of order");
                doc_oks += 1;
            }
            other => panic!("unexpected opcode 0x{other:02x}"),
        }
    }
    let total = docs.len() as u64 * 2000;
    assert!(
        results < total,
        "a slow reader under drop policy cannot have received all {total} results"
    );
    server.shutdown();
}

/// Block policy: the feeder stalls instead, and the slow subscriber
/// eventually receives every result byte-identically.
#[test]
fn slow_reader_under_block_policy_loses_nothing() {
    let server = start_broadcast(8, BroadcastPolicy::Block);
    let addr = server.addr().to_string();
    let (docs, _) = heavy_corpus();
    // The text query fans real bytes through the queue; the aggregate
    // rides along to exercise UPDATE suppression in the slow reader.
    let heavy_queries = ["//book/name/text()", "//book/count()"];

    let sub = std::thread::spawn({
        let addr = addr.clone();
        let n_docs = docs.len();
        move || {
            let mut out = Vec::new();
            // Sleep before reading: the server must park the feeder,
            // not drop frames or kill the connection.
            let report = broadcast_subscribe_slow(&addr, &heavy_queries, n_docs, &mut out);
            (report, out)
        }
    });

    let fopts = FeedOptions {
        chunk: 64 * 1024,
        wait_subs: Some(1),
        want_stats: true,
    };
    let feed = broadcast_feed(&addr, &docs, &fopts).expect("feed completes after the stall");
    let stats = feed.stats_json.expect("STAT");
    assert_eq!(
        stat_field_u64(&stats, "dropped_broadcast"),
        Some(0),
        "block policy must not drop: {stats}"
    );

    let (docs_seen, out) = sub.join().unwrap();
    assert_eq!(docs_seen, docs.len());
    let expect = reference_output(XsqEngine::full(), &heavy_queries, &docs, false).unwrap();
    assert_eq!(String::from_utf8(out).unwrap(), expect);
    server.shutdown();
}

/// Like `broadcast_subscribe`, but sleeps after SUB so the server-side
/// queue fills while the feeder runs.
fn broadcast_subscribe_slow(
    addr: &str,
    queries: &[&str],
    expect_docs: usize,
    out: &mut Vec<u8>,
) -> usize {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writer
        .write_all(&frame_bytes(op::SUB, queries.join("\n").as_bytes()))
        .unwrap();
    writer.flush().unwrap();
    let subok = read_frame(&mut reader, MAX_FRAME).unwrap().unwrap();
    assert_eq!(subok.op, op::SUB_OK);
    std::thread::sleep(Duration::from_millis(500));

    let mut docs = 0usize;
    let mut results: Vec<(u32, String)> = Vec::new();
    while docs < expect_docs {
        let f = read_frame(&mut reader, MAX_FRAME).unwrap().unwrap();
        match f.op {
            op::RESULT => {
                let id = u32::from_le_bytes(f.payload[..4].try_into().unwrap());
                results.push((id, String::from_utf8_lossy(&f.payload[4..]).into_owned()));
            }
            op::UPDATE => {}
            op::DOC_OK => {
                for (id, v) in results.drain(..) {
                    writeln!(out, "{docs}\t{id}\t{v}").unwrap();
                }
                docs += 1;
                // Keep reading slowly so backpressure oscillates.
                std::thread::sleep(Duration::from_millis(20));
            }
            other => panic!("unexpected opcode 0x{other:02x}"),
        }
    }
    writer.write_all(&frame_bytes(op::BYE, &[])).unwrap();
    writer.flush().unwrap();
    let f = read_frame(&mut reader, MAX_FRAME).unwrap().unwrap();
    assert_eq!(f.op, op::OK);
    docs
}

/// The feeder vanishing inside a document poisons the stream: every
/// subscriber gets a framed protocol error and the connection closes.
#[test]
fn feeder_disconnect_mid_document_poisons_subscribers() {
    let server = start_broadcast(1024, BroadcastPolicy::Block);
    let addr = server.addr().to_string();

    let sub = TcpStream::connect(&addr).unwrap();
    sub.set_nodelay(true).unwrap();
    sub.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut sreader = BufReader::new(sub.try_clone().unwrap());
    let mut swriter = sub;
    swriter
        .write_all(&frame_bytes(op::SUB, b"//book/name/text()"))
        .unwrap();
    swriter.flush().unwrap();
    assert_eq!(
        read_frame(&mut sreader, MAX_FRAME).unwrap().unwrap().op,
        op::SUB_OK
    );

    let feeder = TcpStream::connect(&addr).unwrap();
    feeder.set_nodelay(true).unwrap();
    feeder
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    let mut freader = BufReader::new(feeder.try_clone().unwrap());
    let mut fwriter = feeder;
    fwriter.write_all(&frame_bytes(op::FEEDER, &[])).unwrap();
    fwriter.flush().unwrap();
    assert_eq!(
        read_frame(&mut freader, MAX_FRAME).unwrap().unwrap().op,
        op::OK
    );
    fwriter
        .write_all(&frame_bytes(op::FEED, b"<pub><book><name>x"))
        .unwrap();
    fwriter.flush().unwrap();
    drop(fwriter);
    drop(freader);

    // The subscriber receives a framed PROTOCOL error, then EOF.
    let f = read_frame(&mut sreader, MAX_FRAME).unwrap().unwrap();
    assert_eq!(f.op, op::ERR);
    assert_eq!(
        xsq_server::proto::err_code(&f.payload),
        Some(errcode::PROTOCOL)
    );
    let mut rest = Vec::new();
    sreader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "nothing after the poison error");
    server.shutdown();
}

/// Role rules: a second feeder is refused, a subscriber cannot claim
/// the feeder role, the feeder cannot subscribe, UNSUB is refused.
#[test]
fn broadcast_role_violations_are_framed_errors() {
    let server = start_broadcast(1024, BroadcastPolicy::Block);
    let addr = server.addr().to_string();
    let mut conns: Vec<(BufReader<TcpStream>, TcpStream)> = (0..2)
        .map(|_| {
            let s = TcpStream::connect(&addr).unwrap();
            s.set_nodelay(true).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
            (BufReader::new(s.try_clone().unwrap()), s)
        })
        .collect();

    let send = |w: &mut TcpStream, opc: u8, p: &[u8]| {
        w.write_all(&frame_bytes(opc, p)).unwrap();
        w.flush().unwrap();
    };
    let recv = |r: &mut BufReader<TcpStream>| read_frame(r, MAX_FRAME).unwrap().unwrap();

    // First connection takes the feeder role.
    send(&mut conns[0].1, op::FEEDER, &[]);
    assert_eq!(recv(&mut conns[0].0).op, op::OK);
    // …and may not subscribe.
    send(&mut conns[0].1, op::SUB, b"//a/text()");
    let f = recv(&mut conns[0].0);
    assert_eq!(
        xsq_server::proto::err_code(&f.payload),
        Some(errcode::BROADCAST_ROLE)
    );

    // Second connection subscribes; its FEEDER claim and UNSUB are
    // refused, recoverably.
    send(&mut conns[1].1, op::SUB, b"//a/text()");
    assert_eq!(recv(&mut conns[1].0).op, op::SUB_OK);
    send(&mut conns[1].1, op::FEEDER, &[]);
    let f = recv(&mut conns[1].0);
    assert_eq!(
        xsq_server::proto::err_code(&f.payload),
        Some(errcode::BROADCAST_ROLE)
    );
    send(&mut conns[1].1, op::UNSUB, &0u32.to_le_bytes());
    let f = recv(&mut conns[1].0);
    assert_eq!(
        xsq_server::proto::err_code(&f.payload),
        Some(errcode::BROADCAST_ROLE)
    );
    // Still attached and serviceable after all three refusals.
    send(&mut conns[1].1, op::STAT, &[]);
    assert_eq!(recv(&mut conns[1].0).op, op::STAT_OK);
    server.shutdown();
}
