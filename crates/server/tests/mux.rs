//! Wire-v2 session multiplexing: HELLO negotiation, interleaved
//! logical sessions on one connection, recoverable bad-session errors,
//! per-session fatality isolation, and v1 coexistence — all against
//! the event-loop server (the only model that speaks v2).

#![cfg(unix)]

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use xsq_core::XsqEngine;
use xsq_server::proto::{errcode, frame_bytes, op, read_frame, CONTROL_SESSION, WIRE_V2};
use xsq_server::{reference_output, serve, Frame, ServeModel, ServeOptions, MAX_FRAME};

const DOC_A: &str = r#"<pub><book id="1"><name>First</name><price>10</price></book>
<book id="2"><name>Second</name><price>20</price></book></pub>"#;
const DOC_B: &str = r#"<pub><pub><book id="7"><name>Inner</name><price>9.99</price></book>
<year>2003</year></pub><year>2001</year></pub>"#;

fn start_server() -> xsq_server::ServerHandle {
    let mut opts = ServeOptions::new("127.0.0.1:0");
    opts.model = ServeModel::EventLoop;
    opts.idle_timeout = Duration::from_secs(10);
    serve(opts).expect("server binds")
}

/// A raw wire-v2 client: session-id-prefixed frames over one socket.
struct Mux {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Mux {
    fn connect(addr: &str) -> Mux {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        Mux {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn hello(addr: &str) -> Mux {
        let mut m = Mux::connect(addr);
        m.send_raw(op::HELLO, &WIRE_V2.to_le_bytes());
        let reply = m.recv_raw();
        assert_eq!(reply.op, op::HELLO_OK);
        assert_eq!(reply.payload, WIRE_V2.to_le_bytes());
        m
    }

    fn send_raw(&mut self, opcode: u8, payload: &[u8]) {
        self.writer
            .write_all(&frame_bytes(opcode, payload))
            .expect("send");
        self.writer.flush().unwrap();
    }

    fn send(&mut self, sid: u32, opcode: u8, payload: &[u8]) {
        let mut p = Vec::with_capacity(4 + payload.len());
        p.extend_from_slice(&sid.to_le_bytes());
        p.extend_from_slice(payload);
        self.send_raw(opcode, &p);
    }

    fn recv_raw(&mut self) -> Frame {
        read_frame(&mut self.reader, MAX_FRAME)
            .expect("read")
            .expect("server closed early")
    }

    /// Receive one v2 frame, splitting off the session-id prefix.
    fn recv(&mut self) -> (u32, Frame) {
        let f = self.recv_raw();
        assert!(f.payload.len() >= 4, "v2 reply without a session id");
        let sid = u32::from_le_bytes(f.payload[..4].try_into().unwrap());
        (
            sid,
            Frame {
                op: f.op,
                payload: f.payload[4..].to_vec(),
            },
        )
    }

    /// Receive frames until `want_sid` delivers one, queuing nothing:
    /// fails if a different session's frame arrives when strict.
    fn recv_for(&mut self, want_sid: u32) -> Frame {
        let (sid, f) = self.recv();
        assert_eq!(sid, want_sid, "reply for unexpected session");
        f
    }
}

fn err_code_of(frame: &Frame) -> &str {
    assert_eq!(frame.op, op::ERR, "expected ERR, got 0x{:02x}", frame.op);
    xsq_server::proto::err_code(&frame.payload).expect("coded error")
}

/// Drive one document through an open logical session and collect its
/// rendered lines exactly like the reference client would.
fn feed_doc(m: &mut Mux, sid: u32, doc: &str, di: usize, chunk: usize, out: &mut String) {
    use std::fmt::Write as _;
    for piece in doc.as_bytes().chunks(chunk) {
        m.send(sid, op::FEED, piece);
    }
    m.send(sid, op::END_DOC, &[]);
    let mut results: Vec<(u32, String)> = Vec::new();
    loop {
        let f = m.recv_for(sid);
        match f.op {
            op::RESULT => {
                let id = u32::from_le_bytes(f.payload[..4].try_into().unwrap());
                results.push((id, String::from_utf8_lossy(&f.payload[4..]).into_owned()));
            }
            op::UPDATE => {}
            op::DOC_OK => break,
            other => panic!("unexpected opcode 0x{other:02x} during document"),
        }
    }
    for (id, v) in results {
        let _ = writeln!(out, "{di}\t{id}\t{v}");
    }
}

fn sub(m: &mut Mux, sid: u32, queries: &[&str]) {
    m.send(sid, op::SUB, queries.join("\n").as_bytes());
    let f = m.recv_for(sid);
    assert_eq!(f.op, op::SUB_OK, "SUB failed: {:?}", f.payload);
}

#[test]
fn interleaved_sessions_on_one_connection_stay_isolated() {
    let server = start_server();
    let addr = server.addr().to_string();
    let mut m = Mux::hello(&addr);

    let qa = ["//book/name/text()", "//price/sum()"];
    let qb = ["//book/@id"];
    sub(&mut m, 1, &qa);
    sub(&mut m, 2, &qb);

    // Interleave the two sessions' FEED chunks byte-wise: session 1
    // streams DOC_A while session 2 streams DOC_B, alternating frames.
    let a = DOC_A.as_bytes();
    let b = DOC_B.as_bytes();
    let mut ai = a.chunks(7);
    let mut bi = b.chunks(5);
    loop {
        let ca = ai.next();
        let cb = bi.next();
        if let Some(c) = ca {
            m.send(1, op::FEED, c);
        }
        if let Some(c) = cb {
            m.send(2, op::FEED, c);
        }
        if ca.is_none() && cb.is_none() {
            break;
        }
    }
    // Close session 2's document first, then session 1's, and
    // demultiplex the interleaved replies by session id: results
    // stream as they are determined, so both sessions' frames mix
    // freely on the wire.
    m.send(2, op::END_DOC, &[]);
    m.send(1, op::END_DOC, &[]);
    let mut results: std::collections::HashMap<u32, Vec<(u32, String)>> = Default::default();
    let mut done = std::collections::HashSet::new();
    while done.len() < 2 {
        let (sid, f) = m.recv();
        match f.op {
            op::RESULT => {
                let id = u32::from_le_bytes(f.payload[..4].try_into().unwrap());
                results
                    .entry(sid)
                    .or_default()
                    .push((id, String::from_utf8_lossy(&f.payload[4..]).into_owned()));
            }
            op::UPDATE => {}
            op::DOC_OK => {
                assert!(done.insert(sid), "double DOC_OK for session {sid}");
            }
            other => panic!("unexpected opcode 0x{other:02x}"),
        }
    }
    let render = |rs: &[(u32, String)]| {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (id, v) in rs {
            let _ = writeln!(out, "0\t{id}\t{v}");
        }
        out
    };
    let expect_a = reference_output(XsqEngine::full(), &qa, &[DOC_A.as_bytes()], false).unwrap();
    let expect_b = reference_output(XsqEngine::full(), &qb, &[DOC_B.as_bytes()], false).unwrap();
    assert_eq!(render(results.get(&1).map_or(&[], |v| v)), expect_a);
    assert_eq!(render(results.get(&2).map_or(&[], |v| v)), expect_b);
    server.shutdown();
}

#[test]
fn hello_clamps_future_versions_and_v1_still_works() {
    let server = start_server();
    let addr = server.addr().to_string();

    // A client from the future negotiates down to v2.
    let mut m = Mux::connect(&addr);
    m.send_raw(op::HELLO, &99u32.to_le_bytes());
    let reply = m.recv_raw();
    assert_eq!(reply.op, op::HELLO_OK);
    assert_eq!(reply.payload, WIRE_V2.to_le_bytes());
    drop(m);

    // A v1 HELLO pins the connection to unprefixed framing.
    let mut m = Mux::connect(&addr);
    m.send_raw(op::HELLO, &1u32.to_le_bytes());
    let reply = m.recv_raw();
    assert_eq!(reply.op, op::HELLO_OK);
    assert_eq!(reply.payload, 1u32.to_le_bytes());
    m.send_raw(op::SUB, b"//name/text()");
    let reply = m.recv_raw();
    assert_eq!(reply.op, op::SUB_OK);
    drop(m);

    // A legacy client that never says HELLO speaks v1 implicitly; a
    // late HELLO is a recoverable protocol error.
    let mut m = Mux::connect(&addr);
    m.send_raw(op::SUB, b"//name/text()");
    assert_eq!(m.recv_raw().op, op::SUB_OK);
    m.send_raw(op::HELLO, &WIRE_V2.to_le_bytes());
    let reply = m.recv_raw();
    assert_eq!(err_code_of(&reply), errcode::PROTOCOL);
    m.send_raw(op::BYE, &[]);
    assert_eq!(m.recv_raw().op, op::OK);
    server.shutdown();
}

#[test]
fn unknown_session_id_errors_recoverably() {
    let server = start_server();
    let addr = server.addr().to_string();
    let mut m = Mux::hello(&addr);

    // FEED on a session that never opened: recoverable BAD_SESSION.
    m.send(7, op::FEED, b"<a/>");
    let f = m.recv_for(7);
    assert_eq!(err_code_of(&f), errcode::BAD_SESSION);

    // The connection is still healthy: the same sid opens with SUB.
    sub(&mut m, 7, &["//a/count()"]);
    let mut out = String::new();
    feed_doc(&mut m, 7, "<a/>", 0, 64, &mut out);
    assert_eq!(out, "0\t0\t1\n");
    server.shutdown();
}

#[test]
fn fatal_error_in_one_session_leaves_siblings_running() {
    let server = start_server();
    let addr = server.addr().to_string();
    let mut m = Mux::hello(&addr);
    let qa = ["//book/name/text()"];
    sub(&mut m, 1, &qa);
    sub(&mut m, 2, &["//book/@id"]);

    // Session 2 feeds a malformed document — fatal for that session
    // (the mismatched close tag errors during the FEED itself).
    m.send(2, op::FEED, b"<pub><book></pub>");
    let f = m.recv_for(2);
    assert_eq!(err_code_of(&f), errcode::PARSE);

    // Its sid is now stale: further frames get BAD_SESSION, not a dead
    // connection.
    m.send(2, op::FEED, b"<a/>");
    let f = m.recv_for(2);
    assert_eq!(err_code_of(&f), errcode::BAD_SESSION);

    // Session 1 is untouched and completes against its oracle.
    let mut out = String::new();
    feed_doc(&mut m, 1, DOC_A, 0, 9, &mut out);
    let expect = reference_output(XsqEngine::full(), &qa, &[DOC_A.as_bytes()], false).unwrap();
    assert_eq!(out, expect);
    server.shutdown();
}

#[test]
fn mid_frame_disconnect_of_one_connection_leaves_others_intact() {
    let server = start_server();
    let addr = server.addr().to_string();

    // Connection A dies mid-frame (length prefix promises more bytes
    // than ever arrive) while connection B is mid-conversation.
    let mut b = Mux::hello(&addr);
    sub(&mut b, 1, &["//book/name/text()"]);

    let mut a = Mux::hello(&addr);
    sub(&mut a, 1, &["//price/text()"]);
    a.writer.write_all(&[200, 0, 0, 0, op::FEED]).unwrap();
    a.writer.flush().unwrap();
    drop(a);

    let mut out = String::new();
    feed_doc(&mut b, 1, DOC_A, 0, 3, &mut out);
    let expect = reference_output(
        XsqEngine::full(),
        &["//book/name/text()"],
        &[DOC_A.as_bytes()],
        false,
    )
    .unwrap();
    assert_eq!(out, expect);
    server.shutdown();
}

#[test]
fn control_session_serves_server_level_stat() {
    let server = start_server();
    let addr = server.addr().to_string();
    let mut m = Mux::hello(&addr);
    sub(&mut m, 3, &["//a/text()"]);

    m.send(CONTROL_SESSION, op::STAT, &[]);
    let (sid, f) = m.recv();
    assert_eq!(sid, CONTROL_SESSION);
    assert_eq!(f.op, op::STAT_OK);
    let json = String::from_utf8(f.payload).unwrap();
    for needle in [
        "\"model\":\"eventloop\"",
        "\"backend\":",
        "\"connections\":1",
        "\"sessions\":1",
        "\"queue_depth_hwm\":",
        "\"dropped_broadcast\":0",
        "\"plan_cache_entries\":",
    ] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }

    // SUB cannot address the control session.
    m.send(CONTROL_SESSION, op::FEED, b"<a/>");
    let f = m.recv_for(CONTROL_SESSION);
    assert_eq!(err_code_of(&f), errcode::PROTOCOL);

    // Control BYE closes the whole connection.
    m.send(CONTROL_SESSION, op::BYE, &[]);
    let f = m.recv_for(CONTROL_SESSION);
    assert_eq!(f.op, op::OK);
    server.shutdown();
}

#[test]
fn per_session_stat_reports_transport_counters() {
    let server = start_server();
    let addr = server.addr().to_string();
    let mut m = Mux::hello(&addr);
    sub(&mut m, 1, &["//a/text()"]);
    let mut out = String::new();
    feed_doc(&mut m, 1, "<a>x</a>", 0, 64, &mut out);
    m.send(1, op::STAT, &[]);
    let f = m.recv_for(1);
    assert_eq!(f.op, op::STAT_OK);
    let json = String::from_utf8(f.payload).unwrap();
    for needle in [
        "\"model\":\"eventloop\"",
        "\"connections\":1",
        "\"sessions\":1",
        "\"queue_depth_hwm\":",
        "\"dropped_broadcast\":0",
        "\"plan_cache_",
    ] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }
    server.shutdown();
}
