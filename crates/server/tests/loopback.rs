//! Loopback end-to-end conformance: a real server on 127.0.0.1, the
//! reference client, and byte-comparison against the in-process
//! sequential driver — the ISSUE's acceptance gate.

use std::time::Duration;

use xsq_core::XsqEngine;
use xsq_server::{
    reference_output, run_corpus, serve, stat_field_u64, ConnectOptions, ServeModel, ServeOptions,
};

/// Figure 1 of the paper (annotated bookstore document), plus a
/// recursive sibling — the same corpus style as `tests/shard_equivalence.rs`.
const FIG1: &str = r#"<pub><name>PrenticeHall</name><book id="1">
<name>First</name><author>A1</author><price>55.00</price></book>
<book id="2"><name>Second</name><author>A2</author><author>A3</author>
<price>21.50</price></book><year>2002</year></pub>"#;

const RECURSIVE: &str = r#"<pub><pub><book id="7"><name>Inner</name>
<author>X</author><price>9.99</price></book><year>2003</year></pub>
<book id="8"><name>Outer</name><price>12.00</price></book>
<year>2001</year></pub>"#;

const HAZARDS: &str =
    "<pub year=\"2002\r\n2003\"><book id=\"1\"><name>\u{65e5}\u{672c}\r\nX</name>\
     <![CDATA[x]]y\r\nz\u{1F680}]]><price>10.5</price></book>\
     <book id=\"2\"><name>&lt;tag&gt; &#x41;</name><price>20.5</price></book></pub>";

/// The paper-suite queries the shard tests run: structural paths,
/// predicates, closures, attributes, aggregations.
const QUERIES: &[&str] = &[
    "//pub[year>2000]//book[author]//name/text()",
    "/pub/book/name/text()",
    "//book/@id",
    "//book[price<30]/price/text()",
    "//price/sum()",
    "//book/count()",
];

fn corpus() -> Vec<Vec<u8>> {
    vec![
        FIG1.as_bytes().to_vec(),
        RECURSIVE.as_bytes().to_vec(),
        HAZARDS.as_bytes().to_vec(),
        FIG1.as_bytes().to_vec(),
    ]
}

fn start_server(workers: usize) -> xsq_server::ServerHandle {
    let mut opts = ServeOptions::new("127.0.0.1:0");
    opts.workers = workers;
    opts.idle_timeout = Duration::from_secs(10);
    serve(opts).expect("server binds")
}

fn client_output(addr: &str, queries: &[&str], docs: &[Vec<u8>], chunk: usize) -> String {
    let mut out = Vec::new();
    let opts = ConnectOptions {
        chunk,
        running: true,
        want_stats: false,
    };
    run_corpus(addr, queries, docs, &opts, &mut out).expect("corpus replay succeeds");
    String::from_utf8(out).expect("client output is UTF-8")
}

#[test]
fn loopback_output_is_byte_identical_to_sequential_driver() {
    let server = start_server(2);
    let addr = server.addr().to_string();
    let docs = corpus();
    let expected = reference_output(XsqEngine::full(), QUERIES, &docs, true).unwrap();
    assert!(!expected.is_empty(), "oracle produced no output");
    for chunk in [64 * 1024, 7, 1] {
        let got = client_output(&addr, QUERIES, &docs, chunk);
        assert_eq!(got, expected, "chunk size {chunk} diverged from the driver");
    }
    server.shutdown();
}

#[test]
fn sessions_reuse_parser_and_index_across_many_documents() {
    // One session, 32 documents: the push parser is reset between
    // documents and the index runners are finished/rearmed each time;
    // any state leak shows up as a diff against the per-doc oracle.
    let server = start_server(1);
    let addr = server.addr().to_string();
    let docs: Vec<Vec<u8>> = (0..32)
        .map(|i| match i % 3 {
            0 => FIG1.as_bytes().to_vec(),
            1 => RECURSIVE.as_bytes().to_vec(),
            _ => HAZARDS.as_bytes().to_vec(),
        })
        .collect();
    let expected = reference_output(XsqEngine::full(), QUERIES, &docs, true).unwrap();
    let got = client_output(&addr, QUERIES, &docs, 13);
    assert_eq!(got, expected);
    server.shutdown();
}

#[test]
fn concurrent_sessions_are_isolated() {
    let server = start_server(4);
    let addr = server.addr().to_string();
    // Each session subscribes a different slice of the suite over a
    // different corpus; outputs must match each session's own oracle.
    let jobs: Vec<(Vec<&str>, Vec<Vec<u8>>)> = vec![
        (QUERIES[..2].to_vec(), corpus()),
        (QUERIES[2..4].to_vec(), vec![RECURSIVE.as_bytes().to_vec()]),
        (QUERIES[4..].to_vec(), corpus()),
        (vec!["//name/text()"], vec![HAZARDS.as_bytes().to_vec(); 5]),
    ];
    let threads: Vec<_> = jobs
        .into_iter()
        .map(|(queries, docs)| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let expected = reference_output(XsqEngine::full(), &queries, &docs, true).unwrap();
                let got = client_output(&addr, &queries, &docs, 5);
                assert_eq!(got, expected);
            })
        })
        .collect();
    for t in threads {
        t.join().expect("session thread");
    }
    server.shutdown();
}

#[test]
fn stat_frame_reports_session_metrics() {
    let server = start_server(1);
    let addr = server.addr().to_string();
    let docs = corpus();
    let mut out = Vec::new();
    let opts = ConnectOptions {
        chunk: 11,
        running: false,
        want_stats: true,
    };
    let report = run_corpus(&addr, QUERIES, &docs, &opts, &mut out).unwrap();
    assert_eq!(report.docs, docs.len());
    assert!(report.results > 0);
    let stats = report.stats_json.expect("STAT_OK payload");
    let bytes: u64 = docs.iter().map(|d| d.len() as u64).sum();
    for needle in [
        "\"engine\":\"xsq-f\"".to_string(),
        format!("\"docs\":{}", docs.len()),
        format!("\"bytes_in\":{bytes}"),
        format!("\"results\":{}", report.results),
        "\"peak_configs\":".to_string(),
        "\"frames_in\":".to_string(),
    ] {
        assert!(stats.contains(&needle), "missing {needle} in {stats}");
    }
    server.shutdown();
}

/// Both serving models answer the same corpus byte-identically — the
/// event loop replaced thread-per-session behind an unchanged wire.
#[test]
fn threaded_model_stays_byte_identical_to_sequential_driver() {
    let mut opts = ServeOptions::new("127.0.0.1:0");
    opts.workers = 2;
    opts.idle_timeout = Duration::from_secs(10);
    opts.model = ServeModel::Threaded;
    let server = serve(opts).expect("server binds");
    let addr = server.addr().to_string();
    let docs = corpus();
    let expected = reference_output(XsqEngine::full(), QUERIES, &docs, true).unwrap();
    for chunk in [64 * 1024, 7, 1] {
        let got = client_output(&addr, QUERIES, &docs, chunk);
        assert_eq!(got, expected, "threaded model diverged at chunk {chunk}");
    }
    server.shutdown();
}

/// The compiled-plan cache is cross-connection in both serving models:
/// a second connection subscribing the same batch hits the cache.
#[test]
fn plan_cache_is_shared_across_connections_in_both_models() {
    for model in [ServeModel::EventLoop, ServeModel::Threaded] {
        let mut opts = ServeOptions::new("127.0.0.1:0");
        opts.workers = 2;
        opts.idle_timeout = Duration::from_secs(10);
        opts.model = model;
        let server = serve(opts).expect("server binds");
        let addr = server.addr().to_string();
        let docs = vec![FIG1.as_bytes().to_vec()];
        let copts = ConnectOptions {
            chunk: 64 * 1024,
            running: false,
            want_stats: true,
        };
        // Entries are evicted on last unsubscribe, so the first
        // subscription must still be live when the second arrives.
        use std::io::{BufReader, Write};
        use xsq_server::proto::{frame_bytes, op, read_frame};
        use xsq_server::MAX_FRAME;
        let holder = std::net::TcpStream::connect(&addr).unwrap();
        holder.set_nodelay(true).unwrap();
        holder
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut hreader = BufReader::new(holder.try_clone().unwrap());
        let mut hwriter = holder;
        hwriter
            .write_all(&frame_bytes(op::SUB, QUERIES.join("\n").as_bytes()))
            .unwrap();
        hwriter.flush().unwrap();
        let subok = read_frame(&mut hreader, MAX_FRAME).unwrap().unwrap();
        assert_eq!(subok.op, op::SUB_OK);

        let mut out = Vec::new();
        let report = run_corpus(&addr, QUERIES, &docs, &copts, &mut out).unwrap();
        let stats = report.stats_json.expect("STAT_OK payload");
        let hits = stat_field_u64(&stats, "plan_cache_hits")
            .unwrap_or_else(|| panic!("no plan_cache_hits in {stats}"));
        assert!(
            hits >= 1,
            "second identical SUB batch should hit the live plan cache ({model:?}): {stats}"
        );

        // After the holder unsubscribes too, the entry is evicted: a
        // fresh identical batch misses again.
        hwriter.write_all(&frame_bytes(op::BYE, &[])).unwrap();
        hwriter.flush().unwrap();
        assert_eq!(
            read_frame(&mut hreader, MAX_FRAME).unwrap().unwrap().op,
            op::OK
        );
        drop(hwriter);
        let mut out = Vec::new();
        let report = run_corpus(&addr, QUERIES, &docs, &copts, &mut out).unwrap();
        let stats = report.stats_json.expect("STAT_OK payload");
        assert_eq!(
            stat_field_u64(&stats, "plan_cache_entries"),
            Some(1),
            "only the fresh checkout remains after eviction ({model:?}): {stats}"
        );
        server.shutdown();
    }
}

#[test]
fn shutdown_drains_idle_sessions_and_joins() {
    let server = start_server(2);
    let addr = server.addr().to_string();
    // A completed conversation, then a lingering idle connection.
    let docs = vec![FIG1.as_bytes().to_vec()];
    let _ = client_output(&addr, &["//name/text()"], &docs, 17);
    let lingering = std::net::TcpStream::connect(&addr).unwrap();
    // Shutdown must disconnect the idle session promptly (the framed
    // shutting-down error or a plain close) and join every worker.
    let t0 = std::time::Instant::now();
    server.shutdown();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "shutdown took {:?}",
        t0.elapsed()
    );
    drop(lingering);
    // The listener is gone: new connections are refused.
    assert!(std::net::TcpStream::connect(&addr).is_err());
}
