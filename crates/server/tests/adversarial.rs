//! Adversarial-client tests: torn writes, mid-frame disconnects,
//! oversized frames, protocol violations. The server must reply with
//! framed errors where possible, never corrupt other sessions, and
//! never wedge a worker.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use xsq_server::proto::{err_code, errcode, frame_bytes, op, read_frame, WireBound, MAX_FRAME};
use xsq_server::{serve, ServeOptions, ServerHandle, SessionLimits};

fn start_server(configure: impl FnOnce(&mut ServeOptions)) -> ServerHandle {
    let mut opts = ServeOptions::new("127.0.0.1:0");
    opts.workers = 2;
    opts.idle_timeout = Duration::from_secs(5);
    configure(&mut opts);
    serve(opts).expect("server binds")
}

fn connect(server: &ServerHandle) -> TcpStream {
    let stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .unwrap();
    stream
}

fn expect_frame(stream: &mut TcpStream, expected_op: u8) -> Vec<u8> {
    let frame = read_frame(stream, MAX_FRAME)
        .expect("read reply")
        .expect("connection open");
    assert_eq!(
        frame.op,
        expected_op,
        "expected opcode 0x{expected_op:02x}, got 0x{:02x} ({:?})",
        frame.op,
        String::from_utf8_lossy(&frame.payload)
    );
    frame.payload
}

fn expect_eof(stream: &mut TcpStream) {
    assert!(
        read_frame(stream, MAX_FRAME).expect("read").is_none(),
        "expected the server to close the connection"
    );
}

/// A full valid conversation written one byte at a time: every frame
/// header, opcode, and payload boundary is torn.
#[test]
fn one_byte_socket_writes_still_parse() {
    let server = start_server(|_| {});
    let mut stream = connect(&server);
    let mut conversation = Vec::new();
    conversation.extend_from_slice(&frame_bytes(op::SUB, b"/a/b/text()"));
    conversation.extend_from_slice(&frame_bytes(op::FEED, b"<a><b>torn</b></a>"));
    conversation.extend_from_slice(&frame_bytes(op::END_DOC, &[]));
    conversation.extend_from_slice(&frame_bytes(op::BYE, &[]));
    for byte in conversation {
        stream.write_all(&[byte]).unwrap();
    }
    stream.flush().unwrap();
    expect_frame(&mut stream, op::SUB_OK);
    let result = expect_frame(&mut stream, op::RESULT);
    assert_eq!(&result[4..], b"torn");
    expect_frame(&mut stream, op::DOC_OK);
    expect_frame(&mut stream, op::OK);
    expect_eof(&mut stream);
    server.shutdown();
}

#[test]
fn mid_frame_disconnect_leaves_the_server_serving() {
    let server = start_server(|_| {});
    {
        let mut stream = connect(&server);
        // A declared 100-byte frame with only 3 bytes sent, then gone.
        stream.write_all(&100u32.to_le_bytes()).unwrap();
        stream.write_all(&[op::FEED, b'<', b'a']).unwrap();
        stream.flush().unwrap();
    } // dropped: RST/FIN inside a frame body
      // The worker must shrug that off and serve the next client fully.
    let mut stream = connect(&server);
    stream
        .write_all(&frame_bytes(op::SUB, b"//b/count()"))
        .unwrap();
    stream
        .write_all(&frame_bytes(op::FEED, b"<a><b/><b/></a>"))
        .unwrap();
    stream.write_all(&frame_bytes(op::END_DOC, &[])).unwrap();
    stream.flush().unwrap();
    expect_frame(&mut stream, op::SUB_OK);
    // count() streams running UPDATE frames before its final RESULT.
    let mut results = Vec::new();
    loop {
        let frame = read_frame(&mut stream, MAX_FRAME).unwrap().unwrap();
        match frame.op {
            op::UPDATE => {}
            op::RESULT => results.push(frame.payload[4..].to_vec()),
            op::DOC_OK => break,
            other => panic!("unexpected opcode 0x{other:02x}"),
        }
    }
    assert_eq!(results, [b"2".to_vec()]);
    server.shutdown();
}

#[test]
fn oversized_frame_is_rejected_with_framed_error() {
    let server = start_server(|o| o.max_frame = 4096);
    let mut stream = connect(&server);
    // Declare a frame far over the cap; the body is never sent — the
    // server must reject on the declared length alone.
    stream
        .write_all(&(64 * 1024 * 1024u32).to_le_bytes())
        .unwrap();
    stream.flush().unwrap();
    let payload = expect_frame(&mut stream, op::ERR);
    assert_eq!(err_code(&payload), Some(errcode::TOO_LARGE));
    expect_eof(&mut stream);
    server.shutdown();
}

#[test]
fn unknown_opcode_is_rejected_and_closed() {
    let server = start_server(|_| {});
    let mut stream = connect(&server);
    stream.write_all(&frame_bytes(0x42, b"junk")).unwrap();
    stream.flush().unwrap();
    let payload = expect_frame(&mut stream, op::ERR);
    assert_eq!(err_code(&payload), Some(errcode::UNKNOWN_OP));
    expect_eof(&mut stream);
    server.shutdown();
}

#[test]
fn interleaved_sub_during_feed_is_deferred_over_the_wire() {
    let server = start_server(|_| {});
    let mut stream = connect(&server);
    let doc: &[u8] = b"<a><b>v</b></a>";
    stream
        .write_all(&frame_bytes(op::SUB, b"/a/b/text()"))
        .unwrap();
    stream.write_all(&frame_bytes(op::FEED, &doc[..6])).unwrap();
    // SUB while the document is in flight: promised now, live next doc.
    stream
        .write_all(&frame_bytes(op::SUB, b"//b/text()"))
        .unwrap();
    stream.write_all(&frame_bytes(op::FEED, &doc[6..])).unwrap();
    stream.write_all(&frame_bytes(op::END_DOC, &[])).unwrap();
    stream.flush().unwrap();
    expect_frame(&mut stream, op::SUB_OK);
    let second = expect_frame(&mut stream, op::SUB_OK);
    assert_eq!(u32::from_le_bytes(second[4..8].try_into().unwrap()), 1);
    // Document 1: only query 0 answers.
    let r = expect_frame(&mut stream, op::RESULT);
    assert_eq!(u32::from_le_bytes(r[..4].try_into().unwrap()), 0);
    expect_frame(&mut stream, op::DOC_OK);
    // Document 2: both answer.
    stream.write_all(&frame_bytes(op::FEED, doc)).unwrap();
    stream.write_all(&frame_bytes(op::END_DOC, &[])).unwrap();
    stream.flush().unwrap();
    let r1 = expect_frame(&mut stream, op::RESULT);
    let r2 = expect_frame(&mut stream, op::RESULT);
    let mut ids = [
        u32::from_le_bytes(r1[..4].try_into().unwrap()),
        u32::from_le_bytes(r2[..4].try_into().unwrap()),
    ];
    ids.sort_unstable();
    assert_eq!(ids, [0, 1]);
    expect_frame(&mut stream, op::DOC_OK);
    server.shutdown();
}

#[test]
fn malformed_document_gets_parse_error_and_close() {
    let server = start_server(|_| {});
    let mut stream = connect(&server);
    stream
        .write_all(&frame_bytes(op::SUB, b"/a/text()"))
        .unwrap();
    stream
        .write_all(&frame_bytes(op::FEED, b"<a><b></a>"))
        .unwrap();
    stream.write_all(&frame_bytes(op::END_DOC, &[])).unwrap();
    stream.flush().unwrap();
    expect_frame(&mut stream, op::SUB_OK);
    let payload = expect_frame(&mut stream, op::ERR);
    assert_eq!(err_code(&payload), Some(errcode::PARSE));
    expect_eof(&mut stream);
    server.shutdown();
}

#[test]
fn idle_connection_times_out_with_framed_error() {
    let server = start_server(|o| o.idle_timeout = Duration::from_millis(300));
    let mut stream = connect(&server);
    // Send nothing; within the idle window the server must close with
    // a framed idle-timeout error.
    let payload = expect_frame(&mut stream, op::ERR);
    assert_eq!(err_code(&payload), Some(errcode::IDLE_TIMEOUT));
    expect_eof(&mut stream);
    server.shutdown();
}

#[test]
fn over_budget_sub_is_rejected_recoverably_over_tcp() {
    // `xsq serve --max-bound 0 --dtd dblp.dtd`: a query whose static
    // bound is Items(1) must be refused with a recoverable framed error
    // carrying the bound analyzer's derivation, and the session must
    // keep serving admitted queries afterwards.
    let dtd = std::sync::Arc::new(
        xsq_xml::dtd::Dtd::parse(
            "<!ELEMENT dblp ((article | inproceedings)*)>\
             <!ELEMENT article (author*, title, year, pages)>\
             <!ELEMENT inproceedings (author*, title, year, pages, booktitle?)>\
             <!ELEMENT author (#PCDATA)> <!ELEMENT title (#PCDATA)>\
             <!ELEMENT year (#PCDATA)> <!ELEMENT pages (#PCDATA)>\
             <!ELEMENT booktitle (#PCDATA)>",
        )
        .unwrap(),
    );
    let server = start_server(|o| {
        o.limits = SessionLimits {
            max_bound: Some(0),
            dtd: Some(dtd),
        };
    });
    let mut stream = connect(&server);
    stream
        .write_all(&frame_bytes(
            op::SUB,
            b"/dblp/inproceedings[author]/title/text()",
        ))
        .unwrap();
    stream.flush().unwrap();
    let payload = expect_frame(&mut stream, op::ERR);
    assert_eq!(err_code(&payload), Some(errcode::OVER_BUDGET));
    let text = String::from_utf8_lossy(&payload);
    assert!(text.contains("memory-bound"), "payload: {text}");
    assert!(text.contains("outermost-undecided-step"), "payload: {text}");
    // Recoverable: a bufferless query is admitted on the same socket,
    // gets id 0 (the rejected batch consumed none), reports a Zero
    // bound in the SUB_OK tail, and answers documents.
    stream
        .write_all(&frame_bytes(op::SUB, b"/dblp/article/title/text()"))
        .unwrap();
    stream
        .write_all(&frame_bytes(
            op::FEED,
            b"<dblp><article><title>T</title></article></dblp>",
        ))
        .unwrap();
    stream.write_all(&frame_bytes(op::END_DOC, &[])).unwrap();
    stream.flush().unwrap();
    let sub_ok = expect_frame(&mut stream, op::SUB_OK);
    assert_eq!(u32::from_le_bytes(sub_ok[..4].try_into().unwrap()), 1);
    assert_eq!(u32::from_le_bytes(sub_ok[4..8].try_into().unwrap()), 0);
    assert_eq!(WireBound::decode(&sub_ok[8..]), Some(WireBound::Zero));
    let result = expect_frame(&mut stream, op::RESULT);
    assert_eq!(&result[4..], b"T");
    expect_frame(&mut stream, op::DOC_OK);
    server.shutdown();
}

#[test]
fn bad_query_error_carries_analyzer_diagnostics() {
    let server = start_server(|_| {});
    let mut stream = connect(&server);
    stream.write_all(&frame_bytes(op::SUB, b"/a[")).unwrap();
    stream.flush().unwrap();
    let payload = expect_frame(&mut stream, op::ERR);
    assert_eq!(err_code(&payload), Some(errcode::BAD_QUERY));
    let text = String::from_utf8_lossy(&payload);
    assert!(text.contains("\"diagnostics\":["), "payload: {text}");
    // Recoverable: the session still accepts a corrected SUB.
    stream
        .write_all(&frame_bytes(op::SUB, b"/a/text()"))
        .unwrap();
    stream.flush().unwrap();
    expect_frame(&mut stream, op::SUB_OK);
    server.shutdown();
}
