//! XMark-like auction-site dataset.
//!
//! XMark (Schmidt et al., VLDB 2002) was the standard XML benchmark of
//! the paper's era; streaming-XPath follow-up work evaluates on it
//! routinely. This generator reproduces its characteristic shape at any
//! size: an auction `site` with regional `item`s, `person` profiles, and
//! `open_auction`s with bidder histories — including XMark's signature
//! **recursive description markup** (`parlist`/`listitem` nesting), which
//! makes closure queries genuinely multi-path.
//!
//! ```text
//! site / ( regions / <region> / item (@id, name, quantity,
//!            description / parlist / listitem ( text | parlist … ) )
//!        | people / person (@id, name, emailaddress?, watches)
//!        | open_auctions / open_auction (@id, initial, bidder*
//!            (date, increase), current, itemref@item ) )
//! ```

use crate::rng::StdRng;

use crate::words::{name, sentence};

const REGIONS: [&str; 4] = ["africa", "asia", "europe", "namerica"];

/// Generate an XMark-like document of roughly `target_bytes`.
pub fn generate(seed: u64, target_bytes: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::with_capacity(target_bytes + 4096);
    out.push_str("<site>");
    // Thirds: regions, people, open auctions.
    out.push_str("<regions>");
    let region_budget = target_bytes * 4 / 10;
    let mut item_id = 0u64;
    'regions: loop {
        for region in REGIONS {
            if out.len() >= region_budget {
                break 'regions;
            }
            out.push_str(&format!("<{region}>"));
            for _ in 0..rng.gen_range(1..5) {
                item_id += 1;
                item(&mut rng, &mut out, item_id);
            }
            out.push_str(&format!("</{region}>"));
        }
    }
    out.push_str("</regions><people>");
    let people_budget = target_bytes * 7 / 10;
    let mut person_id = 0u64;
    while out.len() < people_budget {
        person_id += 1;
        person(&mut rng, &mut out, person_id);
    }
    out.push_str("</people><open_auctions>");
    let mut auction_id = 0u64;
    while out.len() < target_bytes {
        auction_id += 1;
        auction(
            &mut rng,
            &mut out,
            auction_id,
            item_id.max(1),
            person_id.max(1),
        );
    }
    out.push_str("</open_auctions></site>");
    out
}

fn item(rng: &mut StdRng, out: &mut String, id: u64) {
    out.push_str(&format!("<item id=\"item{id}\"><name>"));
    let n = rng.gen_range(2..5);
    out.push_str(&sentence(rng, n));
    out.push_str("</name><quantity>");
    out.push_str(&rng.gen_range(1..10).to_string());
    out.push_str("</quantity><description>");
    parlist(rng, out, 0);
    out.push_str("</description></item>");
}

/// XMark's recursive description markup: listitems may nest parlists.
fn parlist(rng: &mut StdRng, out: &mut String, depth: u32) {
    out.push_str("<parlist>");
    for _ in 0..rng.gen_range(1..4) {
        out.push_str("<listitem>");
        if depth < 3 && rng.gen_bool(0.3) {
            parlist(rng, out, depth + 1);
        } else {
            let n = rng.gen_range(3..9);
            out.push_str("<text>");
            out.push_str(&sentence(rng, n));
            out.push_str("</text>");
        }
        out.push_str("</listitem>");
    }
    out.push_str("</parlist>");
}

fn person(rng: &mut StdRng, out: &mut String, id: u64) {
    out.push_str(&format!("<person id=\"person{id}\"><name>"));
    out.push_str(&name(rng));
    out.push_str("</name>");
    // ~80% of people list an email (existence predicates stay selective).
    if rng.gen_bool(0.8) {
        out.push_str("<emailaddress>mailto:u");
        out.push_str(&id.to_string());
        out.push_str("@example.org</emailaddress>");
    }
    out.push_str("<watches>");
    out.push_str(&rng.gen_range(0..20).to_string());
    out.push_str("</watches></person>");
}

fn auction(rng: &mut StdRng, out: &mut String, id: u64, items: u64, people: u64) {
    out.push_str(&format!("<open_auction id=\"auction{id}\">"));
    let initial = rng.gen_range(1.0..300.0);
    out.push_str(&format!("<initial>{initial:.2}</initial>"));
    let mut current = initial;
    for _ in 0..rng.gen_range(0..5) {
        let inc = rng.gen_range(1.0..25.0);
        current += inc;
        out.push_str(&format!(
            "<bidder><date>2002-0{}-1{}</date><personref person=\"person{}\"/>\
             <increase>{inc:.2}</increase></bidder>",
            rng.gen_range(1..10),
            rng.gen_range(0..10),
            rng.gen_range(1..=people),
        ));
    }
    out.push_str(&format!("<current>{current:.2}</current>"));
    out.push_str(&format!(
        "<itemref item=\"item{}\"/></open_auction>",
        rng.gen_range(1..=items)
    ));
}

/// The XMark-flavored query set the integration tests and harness use
/// (adapted to the Fig. 3 fragment).
pub const QUERIES: [&str; 6] = [
    "/site/regions/europe/item/name/text()",
    "//item[quantity>5]/name/text()",
    "//person[emailaddress]/name/text()",
    "//open_auction[initial>100]/current/text()",
    "//listitem//text/text()",
    "//bidder/increase/sum()",
];

#[cfg(test)]
mod tests {
    use super::*;
    use xsq_xml::dataset_stats;

    #[test]
    fn shape_is_xmark_like() {
        let doc = generate(42, 150_000);
        let s = dataset_stats(doc.as_bytes()).unwrap();
        // Recursive descriptions push depth well past the base structure.
        assert!(s.max_depth >= 8, "max depth {}", s.max_depth);
        // All three sections exist.
        for probe in ["<regions>", "<people>", "<open_auctions>"] {
            assert!(doc.contains(probe), "{probe}");
        }
        // Recursion really occurs.
        let nested = xsq_core::evaluate("//parlist//parlist/count()", doc.as_bytes()).unwrap();
        assert_ne!(nested[0], "0");
    }

    #[test]
    fn query_set_runs_and_returns_results() {
        let doc = generate(7, 100_000);
        for q in QUERIES {
            let r = xsq_core::evaluate(q, doc.as_bytes()).unwrap();
            assert!(!r.is_empty(), "{q} returned nothing");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(3, 30_000), generate(3, 30_000));
    }
}
