//! Self-contained seeded PRNG for the dataset generators.
//!
//! The generators only need reproducible, statistically reasonable
//! sampling — not cryptographic quality — so a splitmix64 core keeps the
//! crate dependency-free (the build must work without network access to a
//! package registry). The API mirrors the small slice of `rand` the
//! generators used, so the call sites read the same.

use std::ops::{Range, RangeInclusive};

/// Seeded splitmix64 generator, drop-in for the generators' sampling.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Seed deterministically: the same seed always yields the same
    /// stream (dataset reproducibility across runs and platforms).
    pub fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix so small consecutive seeds diverge immediately.
        let mut rng = StdRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        };
        rng.next_u64();
        rng
    }

    /// splitmix64: passes BigCrush, one add + three xor-shifts.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in the range (half-open or inclusive; integer or
    /// float element types).
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Sample a uniform value of `T` over its natural domain
    /// (`f64`: `[0, 1)`).
    pub fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }
}

/// Types with a natural uniform distribution for [`StdRng::gen`].
pub trait Standard {
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut StdRng) -> Self {
        // 53 mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Element types [`StdRng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from the half-open range `[lo, hi)`.
    fn sample_half_open(lo: Self, hi: Self, rng: &mut StdRng) -> Self;
    /// Uniform sample from the closed range `[lo, hi]`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut StdRng) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: Self, hi: Self, rng: &mut StdRng) -> Self {
                assert!(lo < hi, "gen_range on empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Multiply-shift bounded sampling (Lemire); the bias for
                // the generators' tiny spans is far below observability.
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as u64).wrapping_add(off) as $t
            }
            fn sample_inclusive(lo: Self, hi: Self, rng: &mut StdRng) -> Self {
                assert!(lo <= hi, "gen_range on empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                Self::sample_half_open(lo, hi + 1, rng)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut StdRng) -> Self {
        assert!(lo < hi, "gen_range on empty range");
        lo + rng.gen::<f64>() * (hi - lo)
    }
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut StdRng) -> Self {
        Self::sample_half_open(lo, hi, rng)
    }
}

/// Ranges [`StdRng::gen_range`] can sample from. The single blanket impl
/// per range shape keeps integer-literal inference working at call sites
/// (`gen_range(0..20)` defaults to `i32` exactly as with `rand`).
pub trait SampleRange<T> {
    fn sample(self, rng: &mut StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut StdRng) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..9);
            assert!((3..9).contains(&v));
            let w: usize = rng.gen_range(0..5);
            assert!(w < 5);
            let x = rng.gen_range(1..=4u64);
            assert!((1..=4).contains(&x));
        }
    }

    #[test]
    fn int_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.gen_range(1.0..25.0);
            assert!((1.0..25.0).contains(&v));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.8)).count();
        assert!((7_500..8_500).contains(&hits), "hits={hits}");
    }
}
