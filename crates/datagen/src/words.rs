//! Shared word sampling for the synthetic datasets.

use crate::rng::StdRng;

/// A small English-ish vocabulary. Includes "love" so the SHAKE dataset
//  exercises Q1's `[LINE%love]` contains-predicate realistically.
pub const WORDS: &[&str] = &[
    "the", "and", "of", "to", "in", "that", "is", "with", "as", "for", "his", "her", "king",
    "lord", "night", "day", "come", "go", "speak", "hear", "love", "death", "life", "crown",
    "battle", "honor", "sweet", "noble", "fair", "good", "stars", "moon", "data", "stream",
    "query", "path", "node", "value", "result", "protein", "sequence", "archive", "record",
    "system", "index", "letter", "word", "time", "heart", "hand",
];

/// Sample `n` words joined by spaces.
pub fn sentence(rng: &mut StdRng, n: usize) -> String {
    let mut s = String::with_capacity(n * 6);
    for i in 0..n {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(WORDS[rng.gen_range(0..WORDS.len())]);
    }
    s
}

/// A capitalized name-like token (author names, speakers).
pub fn name(rng: &mut StdRng) -> String {
    const FIRST: &[&str] = &[
        "Alice", "Bob", "Carol", "David", "Eve", "Frank", "Grace", "Henry", "Iris", "John", "Kate",
        "Liam", "Mary", "Nora", "Oscar", "Pat",
    ];
    const LAST: &[&str] = &[
        "Smith", "Jones", "Chen", "Kumar", "Garcia", "Mueller", "Tanaka", "Okoro", "Silva",
        "Novak", "Haddad", "Berg",
    ];
    format!(
        "{} {}",
        FIRST[rng.gen_range(0..FIRST.len())],
        LAST[rng.gen_range(0..LAST.len())]
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentence_has_requested_words() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = sentence(&mut rng, 5);
        assert_eq!(s.split(' ').count(), 5);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = sentence(&mut StdRng::seed_from_u64(7), 10);
        let b = sentence(&mut StdRng::seed_from_u64(7), 10);
        assert_eq!(a, b);
    }

    #[test]
    fn names_have_two_parts() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(name(&mut rng).split(' ').count(), 2);
    }
}
