//! SHAKE: a Shakespeare-play-collection-like dataset.
//!
//! Shape targets from the paper's Fig. 15 (SHAKE, 7.89 MB): ~180 K
//! elements over 7.89 MB (≈23 elements/KB), text ≈ 63% of the file,
//! average depth 5.77, maximum depth 7, average tag length 5.03. The
//! structure mirrors the real collection:
//!
//! ```text
//! PLAYS / PLAY / ( TITLE | ACT / ( TITLE | SCENE / ( TITLE |
//!     SPEECH / ( SPEAKER | LINE+ ) ) ) )
//! ```
//!
//! so the paper's queries Q1–Q3 (`/PLAY/ACT/SCENE/SPEECH[LINE%love]/
//! SPEAKER/text()` etc.) run against it unchanged — except that the
//! document element is `PLAYS`; the harness prefixes queries with
//! `/PLAYS` or uses `//`, exactly as the study adapted queries per
//! system.

use crate::rng::StdRng;

use crate::words::{name, sentence};

/// Generate a SHAKE-like document of roughly `target_bytes`.
pub fn generate(seed: u64, target_bytes: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::with_capacity(target_bytes + 4096);
    out.push_str("<PLAYS>");
    while out.len() < target_bytes {
        play(&mut rng, &mut out, target_bytes);
    }
    out.push_str("</PLAYS>");
    out
}

fn play(rng: &mut StdRng, out: &mut String, target: usize) {
    out.push_str("<PLAY><TITLE>");
    out.push_str(&sentence(rng, 3));
    out.push_str("</TITLE>");
    for _ in 0..5 {
        if out.len() >= target {
            break;
        }
        act(rng, out, target);
    }
    out.push_str("</PLAY>");
}

fn act(rng: &mut StdRng, out: &mut String, target: usize) {
    out.push_str("<ACT><TITLE>");
    out.push_str(&sentence(rng, 2));
    out.push_str("</TITLE>");
    for _ in 0..rng.gen_range(3..6) {
        if out.len() >= target {
            break;
        }
        scene(rng, out);
    }
    out.push_str("</ACT>");
}

fn scene(rng: &mut StdRng, out: &mut String) {
    out.push_str("<SCENE><TITLE>");
    out.push_str(&sentence(rng, 4));
    out.push_str("</TITLE>");
    for _ in 0..rng.gen_range(8..20) {
        out.push_str("<SPEECH><SPEAKER>");
        out.push_str(&name(rng).to_uppercase());
        out.push_str("</SPEAKER>");
        for _ in 0..rng.gen_range(1..6) {
            out.push_str("<LINE>");
            let n = rng.gen_range(5..10);
            out.push_str(&sentence(rng, n));
            out.push_str("</LINE>");
        }
        out.push_str("</SPEECH>");
    }
    out.push_str("</SCENE>");
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsq_xml::dataset_stats;

    #[test]
    fn shape_matches_fig_15() {
        let doc = generate(42, 200_000);
        let s = dataset_stats(doc.as_bytes()).unwrap();
        // Depth: SPEECH content sits at depth 5–6 under PLAYS; the paper
        // reports avg 5.77 / max 7 for the real collection.
        assert!(
            s.max_depth >= 5 && s.max_depth <= 7,
            "max depth {}",
            s.max_depth
        );
        assert!(
            s.avg_depth > 4.0 && s.avg_depth < 6.5,
            "avg depth {}",
            s.avg_depth
        );
        // Text fraction ≈ 0.63 in the real dataset.
        let frac = s.text_bytes as f64 / s.size_bytes as f64;
        assert!(frac > 0.4 && frac < 0.8, "text fraction {frac}");
        // Tag names: PLAY/ACT/SCENE/SPEECH/SPEAKER/LINE/TITLE avg ≈ 5.
        assert!(s.avg_tag_length > 4.0 && s.avg_tag_length < 6.5);
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(1, 10_000), generate(1, 10_000));
        assert_ne!(generate(1, 10_000), generate(2, 10_000));
    }

    #[test]
    fn queries_find_love() {
        let doc = generate(7, 100_000);
        let speakers =
            xsq_core::evaluate("//SPEECH[LINE%love]/SPEAKER/text()", doc.as_bytes()).unwrap();
        assert!(!speakers.is_empty(), "some speech should mention love");
        let all = xsq_core::evaluate("//SPEECH/SPEAKER/text()", doc.as_bytes()).unwrap();
        assert!(all.len() > speakers.len());
    }
}
