//! # xsq-datagen — synthetic workloads with the shapes of the paper's
//! datasets
//!
//! The study evaluates on four real datasets (Fig. 15) plus synthetic
//! data from the IBM XML Generator and Toxgene. The real files are not
//! redistributable here, so each generator reproduces its dataset's
//! *shape* — elements per KB, text fraction, average/maximum depth, tag
//! lengths, and the structural paths the experiment queries traverse —
//! at any target size, deterministically from a seed.
//!
//! | Generator | Stands in for | Fig. 15 shape targets |
//! |---|---|---|
//! | [`shake`] | Shakespeare plays (7.89 MB) | depth 5.77/7, tags 5.03, text 63% |
//! | [`nasa`] | NASA ADC repository (25 MB) | depth 5.58/8, tags 6.31, text 60% |
//! | [`dblp`] | DBLP records (119 MB) | depth 2.90/6, tags 5.81, text 47% |
//! | [`psd`] | Protein Sequence DB (716 MB) | depth 5.57/7, tags 6.33, text 40% |
//! | [`xmlgen`] | IBM XML Generator | recursive, nested-level / max-repeats knobs |
//! | [`xmark`] | XMark auction benchmark | site/items/people/auctions, recursive descriptions |
//! | [`toxgene`] | Toxgene templates | Fig. 21 ordering + Fig. 22 result-size data |

pub mod dblp;
pub mod nasa;
pub mod psd;
pub mod rng;
pub mod shake;
pub mod toxgene;
pub mod words;
pub mod xmark;
pub mod xmlgen;

/// The four Fig. 15 datasets by name, at a caller-chosen size.
pub fn standard_dataset(name: &str, seed: u64, target_bytes: usize) -> Option<String> {
    match name {
        "SHAKE" => Some(shake::generate(seed, target_bytes)),
        "NASA" => Some(nasa::generate(seed, target_bytes)),
        "DBLP" => Some(dblp::generate(seed, target_bytes)),
        "PSD" => Some(psd::generate(seed, target_bytes)),
        _ => None,
    }
}

/// Names of the four standard datasets, in Fig. 15 order.
pub const STANDARD_DATASETS: [&str; 4] = ["SHAKE", "NASA", "DBLP", "PSD"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_datasets_resolve() {
        for name in STANDARD_DATASETS {
            let doc = standard_dataset(name, 1, 20_000).unwrap();
            assert!(doc.len() >= 20_000);
            assert!(
                xsq_xml::parse_to_events(doc.as_bytes()).is_ok(),
                "{name} must be well-formed"
            );
        }
        assert!(standard_dataset("NOPE", 1, 10).is_none());
    }

    #[test]
    fn sizes_track_targets() {
        for name in STANDARD_DATASETS {
            let doc = standard_dataset(name, 3, 100_000).unwrap();
            assert!(
                doc.len() < 115_000,
                "{name} overshoots: {} bytes",
                doc.len()
            );
        }
    }
}
