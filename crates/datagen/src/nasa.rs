//! NASA: an astronomical-data-repository-like dataset.
//!
//! Shape targets from Fig. 15 (NASA, 25.0 MB): ~477 K elements (≈19
//! elements/KB), text ≈ 60%, average depth 5.58, maximum 8, average tag
//! length 6.31 — medium-depth records with nested reference metadata:
//!
//! ```text
//! datasets / dataset / ( title | altname | reference / source /
//!     other / ( name | author / ( initial | lastname ) | year ) |
//!     tableHead / field* )
//! ```
//!
//! The Fig. 17 query
//! `/datasets/dataset/reference/source/other/name/text()` runs against it
//! unchanged.

use crate::rng::StdRng;

use crate::words::{name, sentence};

/// Generate a NASA-like document of roughly `target_bytes`.
pub fn generate(seed: u64, target_bytes: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::with_capacity(target_bytes + 2048);
    out.push_str("<datasets>");
    while out.len() < target_bytes {
        dataset(&mut rng, &mut out);
    }
    out.push_str("</datasets>");
    out
}

fn dataset(rng: &mut StdRng, out: &mut String) {
    out.push_str("<dataset subject=\"astronomy\">");
    out.push_str("<title>");
    let n = rng.gen_range(4..9);
    out.push_str(&sentence(rng, n));
    out.push_str("</title>");
    out.push_str("<altname type=\"ADC\">");
    out.push_str(&format!("A{}", rng.gen_range(1000..9999)));
    out.push_str("</altname>");
    for _ in 0..rng.gen_range(1..4) {
        reference(rng, out);
    }
    out.push_str("<tableHead>");
    for _ in 0..rng.gen_range(2..6) {
        out.push_str("<field><name>");
        out.push_str(&sentence(rng, 1));
        out.push_str("</name><units>deg</units></field>");
    }
    out.push_str("</tableHead>");
    out.push_str("</dataset>");
}

fn reference(rng: &mut StdRng, out: &mut String) {
    out.push_str("<reference><source><other>");
    out.push_str("<name>");
    let n = rng.gen_range(2..5);
    out.push_str(&sentence(rng, n));
    out.push_str("</name>");
    for _ in 0..rng.gen_range(1..3) {
        let full = name(rng);
        let mut parts = full.split(' ');
        let first = parts.next().unwrap_or("X");
        let last = parts.next().unwrap_or("Y");
        out.push_str("<author><initial>");
        out.push(first.chars().next().unwrap_or('X'));
        out.push_str("</initial><lastname>");
        out.push_str(last);
        out.push_str("</lastname></author>");
    }
    out.push_str("<year>");
    out.push_str(&(1970 + rng.gen_range(0..35)).to_string());
    out.push_str("</year>");
    out.push_str("</other></source></reference>");
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsq_xml::dataset_stats;

    #[test]
    fn shape_matches_fig_15() {
        let doc = generate(42, 200_000);
        let s = dataset_stats(doc.as_bytes()).unwrap();
        // author parts sit at depth 7; the paper reports avg 5.58 / max 8.
        assert!(
            s.max_depth >= 6 && s.max_depth <= 8,
            "max depth {}",
            s.max_depth
        );
        assert!(
            s.avg_depth > 4.0 && s.avg_depth < 6.5,
            "avg depth {}",
            s.avg_depth
        );
        assert!(s.avg_tag_length > 4.5 && s.avg_tag_length < 7.5);
    }

    #[test]
    fn paper_query_runs() {
        let doc = generate(9, 100_000);
        let names = xsq_core::evaluate(
            "/datasets/dataset/reference/source/other/name/text()",
            doc.as_bytes(),
        )
        .unwrap();
        assert!(!names.is_empty());
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(4, 20_000), generate(4, 20_000));
    }
}
