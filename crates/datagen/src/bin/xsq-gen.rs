//! `xsq-gen` — write the study's synthetic datasets to files.
//!
//! ```text
//! xsq-gen DATASET SIZE_KB [OUTPUT] [--seed N]
//!
//! DATASET: shake | nasa | dblp | psd | recursive | ordering | colors | xmark
//! OUTPUT defaults to stdout.
//! ```

use std::io::Write;
use std::process::ExitCode;

use xsq_datagen::{dblp, nasa, psd, shake, toxgene, xmlgen};

fn main() -> ExitCode {
    let mut seed = 2003u64;
    let mut positional = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(s) => seed = s,
                None => return usage("--seed needs a number"),
            },
            "--help" | "-h" => return usage(""),
            _ => positional.push(a),
        }
    }
    let (Some(dataset), Some(size_kb)) = (positional.first(), positional.get(1)) else {
        return usage("missing DATASET and SIZE_KB");
    };
    let Ok(size_kb) = size_kb.parse::<usize>() else {
        return usage("SIZE_KB must be a number");
    };
    let bytes = size_kb * 1024;
    let doc = match dataset.as_str() {
        "shake" => shake::generate(seed, bytes),
        "nasa" => nasa::generate(seed, bytes),
        "dblp" => dblp::generate(seed, bytes),
        "psd" => psd::generate(seed, bytes),
        "recursive" => xmlgen::generate(
            xmlgen::XmlGenParams {
                seed,
                ..Default::default()
            },
            bytes,
        ),
        "ordering" => toxgene::ordering_dataset(bytes, 10_000.min(bytes / 160).max(50)),
        "colors" => toxgene::color_dataset(seed, bytes),
        "xmark" => xsq_datagen::xmark::generate(seed, bytes),
        other => return usage(&format!("unknown dataset '{other}'")),
    };
    match positional.get(2) {
        None => {
            if std::io::stdout().write_all(doc.as_bytes()).is_err() {
                return ExitCode::FAILURE;
            }
        }
        Some(path) => {
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {} bytes to {path}", doc.len());
        }
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: xsq-gen DATASET SIZE_KB [OUTPUT] [--seed N]\n\
         datasets: shake nasa dblp psd recursive ordering colors xmark"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
