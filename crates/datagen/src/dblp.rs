//! DBLP: a bibliography-records-like dataset.
//!
//! Shape targets from Fig. 15 (DBLP, 119 MB): ~2.99 M elements (≈25
//! elements/KB), text ≈ 47% of the file, average depth 2.90, maximum 6,
//! average tag length 5.81 — a *shallow, wide* dataset: millions of small
//! records under one root:
//!
//! ```text
//! dblp / ( article | inproceedings )* / ( author+ | title | year |
//!          pages | booktitle? | url? )
//! ```
//!
//! The Fig. 17 query `/dblp/article/title/text()` and the Fig. 19 query
//! `/dblp/inproceedings[author]/title/text()` run against it unchanged.
//! As in the paper's Fig. 19 methodology, `excerpt` produces prefixes of
//! one big document at multiple sizes.

use crate::rng::StdRng;

use crate::words::{name, sentence};

/// Generate a DBLP-like document of roughly `target_bytes`.
pub fn generate(seed: u64, target_bytes: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::with_capacity(target_bytes + 1024);
    out.push_str("<dblp>");
    let mut key = 0u64;
    while out.len() < target_bytes {
        key += 1;
        record(&mut rng, &mut out, key);
    }
    out.push_str("</dblp>");
    out
}

fn record(rng: &mut StdRng, out: &mut String, key: u64) {
    let kind = if rng.gen_bool(0.45) {
        "article"
    } else {
        "inproceedings"
    };
    out.push('<');
    out.push_str(kind);
    out.push_str(" key=\"rec/");
    out.push_str(&key.to_string());
    out.push_str("\">");
    // ~10% of inproceedings records lack authors (editor-only entries),
    // so `[author]` predicates are selective.
    let authors = if rng.gen_bool(0.1) {
        0
    } else {
        rng.gen_range(1..4)
    };
    for _ in 0..authors {
        out.push_str("<author>");
        out.push_str(&name(rng));
        out.push_str("</author>");
    }
    out.push_str("<title>");
    let n = rng.gen_range(4..10);
    out.push_str(&sentence(rng, n));
    out.push_str("</title>");
    out.push_str("<year>");
    out.push_str(&(1980 + rng.gen_range(0..25)).to_string());
    out.push_str("</year>");
    out.push_str("<pages>");
    let p = rng.gen_range(1..500);
    out.push_str(&format!("{}-{}", p, p + rng.gen_range(5..20)));
    out.push_str("</pages>");
    if kind == "inproceedings" {
        out.push_str("<booktitle>");
        out.push_str(&sentence(rng, 3));
        out.push_str("</booktitle>");
    }
    out.push_str("</");
    out.push_str(kind);
    out.push('>');
}

/// A well-formed prefix of a DBLP-like document, approximately
/// `prefix_bytes` long — the paper's "the 10MB dataset contains the
/// first 10MB … we have to include the closing tags" (Fig. 19).
pub fn excerpt(seed: u64, full_bytes: usize, prefix_bytes: usize) -> String {
    let full = generate(seed, full_bytes);
    if prefix_bytes >= full.len() {
        return full;
    }
    // Cut after the last complete record before the target offset.
    let cut = full[..prefix_bytes]
        .rfind("</article>")
        .map(|i| i + "</article>".len())
        .into_iter()
        .chain(
            full[..prefix_bytes]
                .rfind("</inproceedings>")
                .map(|i| i + "</inproceedings>".len()),
        )
        .max()
        .unwrap_or(6); // right after "<dblp>"
    let mut out = full[..cut].to_string();
    out.push_str("</dblp>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsq_xml::dataset_stats;

    #[test]
    fn shape_matches_fig_15() {
        let doc = generate(42, 200_000);
        let s = dataset_stats(doc.as_bytes()).unwrap();
        // Record elements at depth 2, fields at depth 3 → the paper's
        // avg of 2.90 for the real dataset.
        assert!(
            s.avg_depth > 2.5 && s.avg_depth < 3.0,
            "avg depth {}",
            s.avg_depth
        );
        assert_eq!(s.max_depth, 3);
        let frac = s.text_bytes as f64 / s.size_bytes as f64;
        assert!(frac > 0.3 && frac < 0.6, "text fraction {frac}");
        assert!(s.avg_tag_length > 4.5 && s.avg_tag_length < 7.0);
    }

    #[test]
    fn paper_queries_run() {
        let doc = generate(3, 100_000);
        let titles = xsq_core::evaluate("/dblp/article/title/text()", doc.as_bytes()).unwrap();
        assert!(!titles.is_empty());
        let with_authors =
            xsq_core::evaluate("/dblp/inproceedings[author]/title/text()", doc.as_bytes()).unwrap();
        let all = xsq_core::evaluate("/dblp/inproceedings/title/text()", doc.as_bytes()).unwrap();
        assert!(
            with_authors.len() < all.len(),
            "predicate should be selective"
        );
        assert!(!with_authors.is_empty());
    }

    #[test]
    fn excerpt_is_well_formed_and_sized() {
        let e = excerpt(5, 100_000, 30_000);
        assert!(e.len() >= 25_000 && e.len() <= 31_000, "len {}", e.len());
        assert!(xsq_xml::parse_to_events(e.as_bytes()).is_ok());
    }

    #[test]
    fn excerpt_larger_than_document_is_the_document() {
        let full = generate(5, 10_000);
        assert_eq!(excerpt(5, 10_000, 1_000_000), full);
    }
}
