//! IBM-XML-Generator-style recursive documents — the Fig. 20 workload.
//!
//! The paper generates "datasets of varying size and recursiveness"; for
//! the 13 MB dataset "the nested level parameter … is set to 15 and the
//! maximum repeats parameter is set to 20". This generator reproduces
//! those knobs: a random tree over a small tag pool in which `pub` can
//! recursively contain `pub` (like Fig. 2's data), deep enough that the
//! closure query `//pub[year]//book[@id]/title/text()` produces many
//! simultaneous match paths.

use crate::rng::StdRng;

use crate::words::sentence;

/// Generator parameters (the IBM tool's knobs).
#[derive(Debug, Clone, Copy)]
pub struct XmlGenParams {
    /// Maximum nesting level (the paper's 13 MB dataset uses 15).
    pub nested_levels: u32,
    /// Maximum children repeats per element (the paper uses 20).
    pub max_repeats: u32,
    pub seed: u64,
}

impl Default for XmlGenParams {
    fn default() -> Self {
        XmlGenParams {
            nested_levels: 15,
            max_repeats: 20,
            seed: 0,
        }
    }
}

/// Generate a recursive document of roughly `target_bytes`.
///
/// The document contains *many* top-level `pub` subtrees (each capped at
/// ~64 KB): the streaming-memory experiments (Fig. 20) measure buffering
/// against the largest element extent, which must stay bounded as the
/// document grows — matching the shape of the paper's generated data,
/// where XSQ's memory is constant while DOM engines grow linearly.
pub fn generate(params: XmlGenParams, target_bytes: usize) -> String {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut out = String::with_capacity(target_bytes + 4096);
    out.push_str("<site>");
    // Fixed top-level element extent: as the document grows, it gains
    // *more* subtrees, not bigger ones, so a streaming engine's buffering
    // requirement is independent of document size.
    let chunk = (32 * 1024).min(target_bytes.max(4096));
    while out.len() < target_bytes {
        let budget = (out.len() + chunk).min(target_bytes);
        pub_element(&mut rng, &params, &mut out, 1, budget);
    }
    out.push_str("</site>");
    out
}

fn pub_element(
    rng: &mut StdRng,
    params: &XmlGenParams,
    out: &mut String,
    level: u32,
    target: usize,
) {
    out.push_str("<pub>");
    // ~70% of pubs carry a year (so `[year]` is selective but common).
    if rng.gen_bool(0.7) {
        out.push_str("<year>");
        out.push_str(&(1990 + rng.gen_range(0..20)).to_string());
        out.push_str("</year>");
    }
    let repeats = rng.gen_range(1..=params.max_repeats.max(1));
    for _ in 0..repeats {
        if out.len() >= target {
            break;
        }
        // Recurse into a nested pub (the recursive structure of Fig. 2)
        // or emit a book.
        if level < params.nested_levels && rng.gen_bool(0.25) {
            pub_element(rng, params, out, level + 1, target);
        } else {
            book(rng, out);
        }
    }
    out.push_str("</pub>");
}

fn book(rng: &mut StdRng, out: &mut String) {
    // ~80% of books have an id attribute.
    if rng.gen_bool(0.8) {
        out.push_str(&format!("<book id=\"{}\">", rng.gen_range(0..100_000)));
    } else {
        out.push_str("<book>");
    }
    out.push_str("<title>");
    let n = rng.gen_range(2..6);
    out.push_str(&sentence(rng, n));
    out.push_str("</title>");
    if rng.gen_bool(0.5) {
        out.push_str("<price>");
        out.push_str(&format!("{:.2}", rng.gen_range(5.0..80.0)));
        out.push_str("</price>");
    }
    out.push_str("</book>");
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsq_xml::dataset_stats;

    #[test]
    fn produces_recursive_structure() {
        let doc = generate(
            XmlGenParams {
                nested_levels: 15,
                max_repeats: 20,
                seed: 42,
            },
            200_000,
        );
        let s = dataset_stats(doc.as_bytes()).unwrap();
        assert!(
            s.max_depth > 6,
            "expected deep recursion, got {}",
            s.max_depth
        );
        // Recursive: some pub contains a pub.
        let nested = xsq_core::evaluate("//pub//pub/count()", doc.as_bytes()).unwrap();
        assert_ne!(nested[0], "0");
    }

    #[test]
    fn fig_20_query_runs() {
        let doc = generate(XmlGenParams::default(), 100_000);
        let titles =
            xsq_core::evaluate("//pub[year]//book[@id]/title/text()", doc.as_bytes()).unwrap();
        assert!(!titles.is_empty());
    }

    #[test]
    fn nesting_parameter_bounds_depth() {
        let shallow = generate(
            XmlGenParams {
                nested_levels: 2,
                max_repeats: 10,
                seed: 1,
            },
            50_000,
        );
        let s = dataset_stats(shallow.as_bytes()).unwrap();
        // site(1) / pub(2) / pub(3) / book(4) / title(5).
        assert!(s.max_depth <= 5, "depth {}", s.max_depth);
    }

    #[test]
    fn deterministic() {
        let p = XmlGenParams::default();
        assert_eq!(generate(p, 10_000), generate(p, 10_000));
    }
}
