//! PSD: a protein-sequence-database-like dataset.
//!
//! Shape targets from Fig. 15 (PSD, 716 MB): ~21.3 M elements (≈29
//! elements/KB — element-dense), text ≈ 40%, average depth 5.57, maximum
//! 7, average tag length 6.33:
//!
//! ```text
//! ProteinDatabase / ProteinEntry / ( header / ( uid | accession ) |
//!     protein / name | organism / ( source | common ) |
//!     reference / refinfo / ( authors / author* | citation | year ) |
//!     sequence )
//! ```
//!
//! The Fig. 17 query `/ProteinDatabase/ProteinEntry/reference/refinfo/
//! authors/author/text()` runs against it unchanged. The paper runs PSD
//! at 716 MB; the same generator scales to any target size.

use crate::rng::StdRng;

use crate::words::{name, sentence};

/// Generate a PSD-like document of roughly `target_bytes`.
pub fn generate(seed: u64, target_bytes: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::with_capacity(target_bytes + 2048);
    out.push_str("<ProteinDatabase>");
    let mut uid = 0u64;
    while out.len() < target_bytes {
        uid += 1;
        entry(&mut rng, &mut out, uid);
    }
    out.push_str("</ProteinDatabase>");
    out
}

fn entry(rng: &mut StdRng, out: &mut String, uid: u64) {
    out.push_str("<ProteinEntry id=\"");
    out.push_str(&format!("P{uid:06}"));
    out.push_str("\"><header><uid>");
    out.push_str(&uid.to_string());
    out.push_str("</uid><accession>");
    out.push_str(&format!("A{:05}", rng.gen_range(0..100_000)));
    out.push_str("</accession></header>");
    out.push_str("<protein><name>");
    let n = rng.gen_range(2..5);
    out.push_str(&sentence(rng, n));
    out.push_str("</name></protein>");
    out.push_str("<organism><source>");
    out.push_str(&sentence(rng, 2));
    out.push_str("</source><common>");
    out.push_str(&sentence(rng, 1));
    out.push_str("</common></organism>");
    for _ in 0..rng.gen_range(1..3) {
        out.push_str("<reference><refinfo><authors>");
        for _ in 0..rng.gen_range(1..5) {
            out.push_str("<author>");
            out.push_str(&name(rng));
            out.push_str("</author>");
        }
        out.push_str("</authors><citation>");
        let n = rng.gen_range(3..7);
        out.push_str(&sentence(rng, n));
        out.push_str("</citation><year>");
        out.push_str(&(1975 + rng.gen_range(0..30)).to_string());
        out.push_str("</year></refinfo></reference>");
    }
    out.push_str("<sequence>");
    for _ in 0..rng.gen_range(4..12) {
        const AA: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";
        for _ in 0..10 {
            out.push(AA[rng.gen_range(0..AA.len())] as char);
        }
    }
    out.push_str("</sequence></ProteinEntry>");
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsq_xml::dataset_stats;

    #[test]
    fn shape_matches_fig_15() {
        let doc = generate(42, 200_000);
        let s = dataset_stats(doc.as_bytes()).unwrap();
        // authors at depth 6; the paper reports avg 5.57 / max 7.
        assert!(
            s.max_depth >= 5 && s.max_depth <= 7,
            "max depth {}",
            s.max_depth
        );
        assert!(
            s.avg_depth > 3.2 && s.avg_depth < 6.0,
            "avg depth {}",
            s.avg_depth
        );
        assert!(s.avg_tag_length > 4.5 && s.avg_tag_length < 8.0);
    }

    #[test]
    fn paper_query_runs() {
        let doc = generate(11, 100_000);
        let authors = xsq_core::evaluate(
            "/ProteinDatabase/ProteinEntry/reference/refinfo/authors/author/text()",
            doc.as_bytes(),
        )
        .unwrap();
        assert!(!authors.is_empty());
    }
}
