//! Toxgene-style template datasets — the two §6.4 microbenchmarks.
//!
//! * [`ordering_dataset`] — the data-ordering experiment (Fig. 21): the
//!   template
//!
//!   ```text
//!   <a id="1"> <prior>1</prior>
//!       <foo>1</foo>   (repeated 10,000 times)
//!       <posterior>1</posterior> </a>
//!   ```
//!
//!   repeated with increasing `id`. The queries `/a[prior=0]`,
//!   `/a[posterior=0]`, and `/a[@id=0]` all return empty results, but a
//!   buffering engine pays very differently depending on *where* the
//!   falsifying evidence sits.
//!
//! * [`color_dataset`] — the result-size experiment (Fig. 22): elements
//!   `red` (10%), `green` (30%), `blue` (60%), each holding one
//!   character, so `/a/red`, `/a/green`, `/a/blue` return 10/30/60% of
//!   the data.

use crate::rng::StdRng;

/// The Fig. 21 template dataset. One `<a>` group is ~160 KB with the
/// paper's `foo_repeats = 10_000`; pass smaller repeats for quick runs.
pub fn ordering_dataset(target_bytes: usize, foo_repeats: usize) -> String {
    // The paper's template nests the groups under a single document
    // element so `/a[...]` steps address them as `/doc/a`; the study's
    // queries spell it `/a` — the harness uses `//a`, which is
    // equivalent here (groups appear at exactly one depth).
    let mut out = String::with_capacity(target_bytes + 1024);
    out.push_str("<doc>");
    let mut id = 0u64;
    while out.len() < target_bytes {
        id += 1;
        out.push_str(&format!("<a id=\"{id}\"><prior>1</prior>"));
        for _ in 0..foo_repeats {
            out.push_str("<foo>1</foo>");
        }
        out.push_str("<posterior>1</posterior></a>");
    }
    out.push_str("</doc>");
    out
}

/// The Fig. 22 color dataset: 10% `red`, 30% `green`, 60% `blue`, one
/// character of content each, under a single `<a>` document element.
pub fn color_dataset(seed: u64, target_bytes: usize) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::with_capacity(target_bytes + 64);
    out.push_str("<a>");
    while out.len() < target_bytes {
        let roll: f64 = rng.gen();
        let tag = if roll < 0.1 {
            "red"
        } else if roll < 0.4 {
            "green"
        } else {
            "blue"
        };
        out.push('<');
        out.push_str(tag);
        out.push('>');
        out.push((b'a' + rng.gen_range(0..26)) as char);
        out.push_str("</");
        out.push_str(tag);
        out.push('>');
    }
    out.push_str("</a>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_dataset_has_the_template_shape() {
        let doc = ordering_dataset(50_000, 100);
        let events = xsq_xml::parse_to_events(doc.as_bytes()).unwrap();
        assert!(events.len() > 100);
        // All three Fig. 21 queries return empty result sets.
        for q in ["//a[prior=0]", "//a[posterior=0]", "//a[@id=0]"] {
            let r = xsq_core::evaluate(q, doc.as_bytes()).unwrap();
            assert!(r.is_empty(), "{q} must be empty");
        }
        // Sanity: matching predicates do select.
        let r = xsq_core::evaluate("//a[prior=1]/prior/text()", doc.as_bytes()).unwrap();
        assert!(!r.is_empty());
    }

    #[test]
    fn color_dataset_proportions() {
        let doc = color_dataset(42, 200_000);
        let red = xsq_core::evaluate("/a/red/count()", doc.as_bytes()).unwrap()[0]
            .parse::<f64>()
            .unwrap();
        let green = xsq_core::evaluate("/a/green/count()", doc.as_bytes()).unwrap()[0]
            .parse::<f64>()
            .unwrap();
        let blue = xsq_core::evaluate("/a/blue/count()", doc.as_bytes()).unwrap()[0]
            .parse::<f64>()
            .unwrap();
        let total = red + green + blue;
        assert!((red / total - 0.1).abs() < 0.03, "red {}", red / total);
        assert!(
            (green / total - 0.3).abs() < 0.04,
            "green {}",
            green / total
        );
        assert!((blue / total - 0.6).abs() < 0.05, "blue {}", blue / total);
    }

    #[test]
    fn deterministic() {
        assert_eq!(color_dataset(1, 5000), color_dataset(1, 5000));
        assert_eq!(ordering_dataset(5000, 10), ordering_dataset(5000, 10));
    }
}
