//! Differential correctness: the one-pass streaming transformer must be
//! byte-identical to the two-pass DOM reference transformer
//! (`xsq_baselines::dom::transform`) over a corpus of rule sets ×
//! documents, and its output must not depend on how the input is
//! chunked — full document, 64 KB, 7 bytes, and the adversarial 1-byte
//! chunking all concatenate to the same bytes.

use xsq_baselines::dom::transform::transform_bytes;
use xsq_transform::Transformer;
use xsq_xpath::RuleSet;

/// Rule sets spanning the transformation surface: shapes, attribute
/// ops, deferred predicates, closures, positional and text-function
/// predicates, first-match-wins interactions, nested drops.
const RULE_SETS: &[&str] = &[
    // Identity-ish: nothing matches.
    "/no/such/path => drop",
    // Immediate verdicts: tag and attribute tests only.
    "//author => rename(who)\n//url => drop",
    "//item[@id] => wrap(boxed) +@seen=\"y\"\n//bidder => drop",
    // Deferred child-existence predicates.
    "//inproceedings[author] => rename(talk)\n//article => wrap(rec)",
    "//listitem[parlist] => wrap(nested)",
    // Deferred child-text predicates resolving after the candidate.
    "//inproceedings[year=2002]//author => wrap(hit)",
    "//open_auction[current>200]//increase => rename(bump)",
    // Positional predicates (transform-only surface).
    "/dblp/article[1] => rename(first)\n/dblp/article[last()] => rename(final)",
    "//open_auction/bidder[2] => drop",
    "//parlist/listitem[position()=last()] => wrap(tail)",
    // Text functions.
    "//title[contains(text(),the)] => rename(thetitle)",
    "//emailaddress[starts-with(text(),mailto)] => drop",
    "//year[string-length(text())>3] => wrap(y4)",
    // First-match-wins with overlapping patterns + attr ops.
    "//article[@key] => copy +@kept=\"1\"\n//article => drop\n//year => rename(yr) -@none",
    // Closure recursion: every parlist at every depth.
    "//parlist => rename(pl)\n//text => wrap(t)",
    // Drop with matches inside the dropped region.
    "//description => drop\n//parlist => rename(never)",
];

fn corpus() -> Vec<(&'static str, String)> {
    vec![
        ("dblp-8k", xsq_datagen::dblp::generate(11, 8 * 1024)),
        ("xmark-12k", xsq_datagen::xmark::generate(23, 12 * 1024)),
        ("shake-6k", xsq_datagen::shake::generate(7, 6 * 1024)),
        (
            "edgecases",
            concat!(
                "<dblp><article key=\"a/1\"><title>the One</title>",
                "<year>2002</year></article>",
                "<inproceedings><author>A &amp; B</author><author>C</author>",
                "<title>deep &lt;thoughts&gt;</title><year>1999</year>",
                "</inproceedings>",
                "<article><title></title><year>31</year></article></dblp>"
            )
            .to_string(),
        ),
    ]
}

#[test]
fn stream_matches_dom_oracle_over_corpus() {
    let docs = corpus();
    for rules_text in RULE_SETS {
        let t = Transformer::compile(rules_text).unwrap();
        let rules = RuleSet::parse(rules_text).unwrap();
        for (name, doc) in &docs {
            let stream = t.transform(doc.as_bytes()).unwrap();
            let dom = transform_bytes(doc.as_bytes(), &rules).unwrap();
            assert_eq!(
                stream.xml, dom,
                "stream vs DOM divergence: rules {rules_text:?} on {name}"
            );
        }
    }
}

#[test]
fn output_is_chunk_boundary_independent() {
    let docs = corpus();
    for rules_text in RULE_SETS {
        let t = Transformer::compile(rules_text).unwrap();
        for (name, doc) in &docs {
            let whole = t.transform(doc.as_bytes()).unwrap();
            for chunk in [64 * 1024, 7, 1] {
                let mut session = t.session();
                let mut out = String::new();
                for piece in doc.as_bytes().chunks(chunk) {
                    out.push_str(&session.push(piece).unwrap());
                }
                let tail = session.finish().unwrap();
                out.push_str(&tail.xml);
                assert_eq!(
                    out, whole.xml,
                    "chunk size {chunk} diverged: rules {rules_text:?} on {name}"
                );
                assert_eq!(
                    tail.stats.peak_buffered, whole.stats.peak_buffered,
                    "buffering must not depend on chunking ({name})"
                );
            }
        }
    }
}

#[test]
fn transformed_output_stays_well_formed() {
    // Every output must reparse; verdicts aside, the rewriter may never
    // emit unbalanced or mis-escaped markup. (Empty output — whole
    // document dropped — is legal for a transformer but none of these
    // rule sets drop the root.)
    let docs = corpus();
    for rules_text in RULE_SETS {
        let t = Transformer::compile(rules_text).unwrap();
        for (name, doc) in &docs {
            let out = t.transform(doc.as_bytes()).unwrap();
            xsq_xml::parse_to_events(out.xml.as_bytes()).unwrap_or_else(|e| {
                panic!("output not well-formed for {rules_text:?} on {name}: {e}")
            });
        }
    }
}

#[test]
fn stats_account_for_every_element() {
    let doc = xsq_datagen::dblp::generate(3, 4 * 1024);
    let elements = xsq_xml::parse_to_events(doc.as_bytes())
        .unwrap()
        .iter()
        .filter(|e| matches!(e, xsq_xml::SaxEvent::Begin { .. }))
        .count() as u64;
    let t = Transformer::compile("//author => rename(who)").unwrap();
    let out = t.transform(doc.as_bytes()).unwrap();
    assert_eq!(out.stats.elements, elements);
    assert!(out.stats.matched > 0);
    assert_eq!(out.stats.bytes_out as usize, out.xml.len());
}
