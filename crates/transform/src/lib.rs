//! # xsq-transform — the streaming transformation engine
//!
//! One forward pass over an XML stream, rewriting it under `.xfm`
//! template rules (parsed by [`xsq_xpath::rules`]): each rule pairs a
//! match pattern in the streaming-safe XPath surface with an output
//! action — `copy`, `drop`, `rename(tag)`, `wrap(tag)`, plus attribute
//! operations. Elements matched by no rule copy through unchanged, so a
//! rule set is always a total transformation.
//!
//! The engine composes three existing layers:
//!
//! * the push-mode parser ([`xsq_xml::PushParser`]) — input arrives in
//!   arbitrary chunks; the event stream (and therefore the output) is
//!   byte-identical under any chunking;
//! * a pattern [`matcher`] in the style of the paper's HPDT
//!   configuration sets, specialized for per-element verdicts with the
//!   BPDT predicate timings of §3.2 (plus the transform-only
//!   `position()`/`last()` predicates the selection engines reject);
//! * a [`rewrite`] stage that streams decided regions immediately and
//!   buffers only regions whose verdict is still pending — the transform
//!   analogue of the paper's output buffers, with `peak_buffered`
//!   reported so the cost is observable.
//!
//! At compile time, every pattern already went through
//! [`xsq_xpath::rules::RuleSet::parse`]'s streamability gate; patterns in
//! the classic Fig. 3 surface are additionally pushed through the HPDT
//! build/verify/lint pipeline of `xsq-core` — its diagnostics (e.g.
//! statically unsatisfiable predicates) surface as compile warnings.

pub mod matcher;
pub mod rewrite;

use std::fmt;

use matcher::{MatchDecision, Matcher};
use rewrite::{BeginDecision, Rewriter};
use xsq_xml::dtd::Dtd;
use xsq_xml::{ParsePoll, PushParser, RawEvent, StreamParser};
use xsq_xpath::{RuleError, RuleSet};

pub use rewrite::TransformStats;
pub use xsq_core::MemoryBound;

/// A compiled transformation.
#[derive(Debug)]
pub struct Transformer {
    rules: RuleSet,
    /// Non-fatal findings from the rule compiler (unsatisfiable
    /// predicates, structural lints from the HPDT verifier).
    pub warnings: Vec<String>,
    /// Per-rule static memory bound from the selection analyzer, in
    /// rule order. `None` for patterns outside the classic HPDT surface
    /// (`position()`/`last()` predicates), whose pending regions the
    /// bound model does not cover.
    bounds: Vec<Option<MemoryBound>>,
}

/// The result of transforming one document.
#[derive(Debug)]
pub struct TransformOutput {
    pub xml: String,
    pub stats: TransformStats,
}

/// An error raised while transforming.
#[derive(Debug)]
pub enum TransformError {
    /// The rules file failed to compile.
    Rules(RuleError),
    /// The input document is not well formed.
    Xml(xsq_xml::Error),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::Rules(e) => write!(f, "rules: {e}"),
            TransformError::Xml(e) => write!(f, "xml: {e}"),
        }
    }
}

impl std::error::Error for TransformError {}

impl From<xsq_xml::Error> for TransformError {
    fn from(e: xsq_xml::Error) -> Self {
        TransformError::Xml(e)
    }
}

impl Transformer {
    /// Compile a `.xfm` rules file. Non-streamable patterns are rejected
    /// with a spanned [`RuleError`]; patterns in the classic HPDT surface
    /// are built and verified through the `xsq-core` analyzer, whose
    /// lints become [`warnings`](Self::warnings).
    pub fn compile(rules_text: &str) -> Result<Transformer, RuleError> {
        Transformer::compile_with_dtd(rules_text, None)
    }

    /// [`compile`](Self::compile) with a schema: each classic-surface
    /// pattern additionally gets a static memory bound on its pending
    /// (verdict-undecided) regions, proven against `dtd` by the
    /// selection engine's bound analyzer. The bounds are advisory —
    /// they never change the transformation — and feed
    /// [`reorder_ready`](Self::reorder_ready).
    pub fn compile_with_dtd(rules_text: &str, dtd: Option<&Dtd>) -> Result<Transformer, RuleError> {
        let rules = RuleSet::parse(rules_text)?;
        let mut warnings = Vec::new();
        let mut bounds = Vec::with_capacity(rules.rules.len());
        for rule in &rules.rules {
            // Query-level lints apply to every pattern.
            for d in xsq_core::analyze::lint_query(&rule.pattern) {
                warnings.push(format!("rule at line {}: {d}", rule.line));
            }
            // Classic-surface patterns also validate through the HPDT
            // pipeline: build, structural verify, prune. Transform-only
            // predicates (position()/last()) are outside that surface.
            if xsq_xpath::streamability(&rule.pattern).hpdt_supported() {
                match xsq_core::analyze_with_dtd(&rule.pattern, dtd) {
                    Ok(analysis) => {
                        for d in analysis.diagnostics.iter().filter(|d| d.is_error()) {
                            warnings.push(format!("rule at line {}: {d}", rule.line));
                        }
                        bounds.push(Some(analysis.bound.bound));
                    }
                    Err(e) => {
                        warnings.push(format!("rule at line {}: hpdt: {e}", rule.line));
                        bounds.push(None);
                    }
                }
            } else {
                bounds.push(None);
            }
        }
        Ok(Transformer {
            rules,
            warnings,
            bounds,
        })
    }

    /// The compiled rule set.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Per-rule static memory bounds, in rule order (see the field doc
    /// on why an entry can be `None`).
    pub fn rule_bounds(&self) -> &[Option<MemoryBound>] {
        &self.bounds
    }

    /// True when every rule's pending-region buffering is statically
    /// bounded by a document-independent item count (Zero or Items).
    /// Such a rule set can be scheduled out of document order — e.g.
    /// fused with a reordering pipeline stage — with bounded memory;
    /// `PerDepth`, `Unbounded`, and out-of-surface rules cannot make
    /// that promise.
    pub fn reorder_ready(&self) -> bool {
        self.bounds
            .iter()
            .all(|b| b.as_ref().is_some_and(|b| b.items().is_some()))
    }

    /// Transform a complete document held in memory.
    pub fn transform(&self, input: &[u8]) -> Result<TransformOutput, TransformError> {
        let mut session = self.session();
        let mut xml = session.push(input)?;
        let tail = session.finish()?;
        xml.push_str(&tail.xml);
        Ok(TransformOutput {
            xml,
            stats: tail.stats,
        })
    }

    /// Start an incremental push-mode session. Chunks may split the
    /// document anywhere; output is identical for every chunking.
    pub fn session(&self) -> TransformSession<'_> {
        TransformSession {
            parser: StreamParser::push_mode(),
            matcher: Matcher::new(&self.rules),
            rewriter: Rewriter::new(&self.rules.rules),
            failed: false,
        }
    }
}

/// An in-flight push-mode transformation over one document.
pub struct TransformSession<'t> {
    parser: PushParser,
    matcher: Matcher<'t>,
    rewriter: Rewriter<'t>,
    failed: bool,
}

impl TransformSession<'_> {
    /// Feed a chunk and return the output bytes that became final.
    pub fn push(&mut self, chunk: &[u8]) -> Result<String, TransformError> {
        self.parser.push(chunk);
        self.drain()?;
        Ok(self.rewriter.flush())
    }

    /// Signal end of input and return the remaining output plus stats.
    pub fn finish(mut self) -> Result<TransformOutput, TransformError> {
        self.parser.finish();
        self.drain()?;
        debug_assert_eq!(self.matcher.open_pendings(), 0);
        let (xml, stats) = self.rewriter.finish();
        Ok(TransformOutput { xml, stats })
    }

    fn drain(&mut self) -> Result<(), TransformError> {
        if self.failed {
            return Ok(());
        }
        loop {
            // The raw event borrows the parser, so the match body can't
            // call parser methods — matcher/rewriter are separate fields.
            match self.parser.poll_raw() {
                Err(e) => {
                    self.failed = true;
                    return Err(e.into());
                }
                Ok(ParsePoll::NeedMore) | Ok(ParsePoll::End) => return Ok(()),
                Ok(ParsePoll::Event(ev)) => match ev {
                    RawEvent::StartDocument | RawEvent::EndDocument => {}
                    RawEvent::Begin {
                        name, attributes, ..
                    } => {
                        let (decision, resolutions) = self.matcher.begin(name, attributes);
                        let d = match decision {
                            MatchDecision::Decided(r) => BeginDecision::Decided(r),
                            MatchDecision::Pending(p) => BeginDecision::Pending(p),
                        };
                        self.rewriter.begin(name, attributes, d);
                        for r in resolutions {
                            self.rewriter.resolve(r.pending, r.rule);
                        }
                    }
                    RawEvent::Text { element, text, .. } => {
                        let resolutions = self.matcher.text_of(element, text);
                        self.rewriter.text(text);
                        for r in resolutions {
                            self.rewriter.resolve(r.pending, r.rule);
                        }
                    }
                    RawEvent::End { .. } => {
                        let resolutions = self.matcher.end();
                        self.rewriter.end();
                        for r in resolutions {
                            self.rewriter.resolve(r.pending, r.rule);
                        }
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rules: &str, doc: &str) -> String {
        Transformer::compile(rules)
            .unwrap()
            .transform(doc.as_bytes())
            .unwrap()
            .xml
    }

    #[test]
    fn identity_when_nothing_matches() {
        let out = run("/nope => drop", "<a x=\"1\"><b>t &amp; u</b></a>");
        assert_eq!(out, "<a x=\"1\"><b>t &amp; u</b></a>");
    }

    #[test]
    fn drop_removes_subtrees() {
        let out = run("//b => drop", "<a><b><c>x</c></b>keep<b/></a>");
        assert_eq!(out, "<a>keep</a>");
    }

    #[test]
    fn rename_and_wrap_and_attrs() {
        let out = run(
            "//b => rename(x)\n//c => wrap(w) +@seen=\"1\"",
            "<a><b old=\"v\">t</b><c/></a>",
        );
        assert_eq!(out, "<a><x old=\"v\">t</x><w><c seen=\"1\"></c></w></a>");
    }

    #[test]
    fn deferred_verdicts_buffer_and_release() {
        // [year=2002] resolves only after book closed.
        let rules = "//pub[year=2002]//book => wrap(hit)";
        let doc = "<pub><book>B</book><year>2002</year></pub>";
        let t = Transformer::compile(rules).unwrap();
        let out = t.transform(doc.as_bytes()).unwrap();
        assert_eq!(
            out.xml,
            "<pub><hit><book>B</book></hit><year>2002</year></pub>"
        );
        assert!(out.stats.peak_buffered > 0, "the book had to buffer");
        assert_eq!(out.stats.deferred, 1);

        let doc = "<pub><book>B</book><year>1999</year></pub>";
        let out = t.transform(doc.as_bytes()).unwrap();
        assert_eq!(out.xml, "<pub><book>B</book><year>1999</year></pub>");
    }

    #[test]
    fn first_match_wins_in_file_order() {
        let rules = "//b[@keep] => copy\n//b => drop";
        let out = run(rules, "<a><b keep=\"1\">x</b><b>y</b></a>");
        assert_eq!(out, "<a><b keep=\"1\">x</b></a>");
    }

    #[test]
    fn drop_inside_pending_region() {
        // c is dropped inside a book whose own verdict is pending.
        let rules = "//pub[year=2002]//book => rename(hit)\n//c => drop";
        let out = run(
            rules,
            "<pub><book><c>no</c>yes</book><year>2002</year></pub>",
        );
        assert_eq!(out, "<pub><hit>yes</hit><year>2002</year></pub>");
    }

    #[test]
    fn pending_inside_dropped_region_is_discarded() {
        // The pending element's resolution arrives after its subtree was
        // dropped with its ancestor; nothing must leak.
        let rules = "//b => drop\n//c[d] => wrap(w)";
        let out = run(rules, "<a><b><c><d/></c></b>tail</a>");
        assert_eq!(out, "<a>tail</a>");
    }

    #[test]
    fn chunked_output_concatenates_identically() {
        let rules = "//b[c] => rename(x)\n//d => drop";
        let doc = "<a><b><c>1</c></b><b>2</b><d>gone</d>t &lt; u</a>";
        let t = Transformer::compile(rules).unwrap();
        let whole = t.transform(doc.as_bytes()).unwrap().xml;
        for chunk in [1usize, 3, 7, 64] {
            let mut session = t.session();
            let mut out = String::new();
            for piece in doc.as_bytes().chunks(chunk) {
                out.push_str(&session.push(piece).unwrap());
            }
            let fin = session.finish().unwrap();
            out.push_str(&fin.xml);
            assert_eq!(out, whole, "chunk size {chunk}");
        }
    }

    #[test]
    fn malformed_input_is_an_error() {
        let t = Transformer::compile("//b => drop").unwrap();
        assert!(matches!(
            t.transform(b"<a><b></a>"),
            Err(TransformError::Xml(_))
        ));
    }

    #[test]
    fn unsatisfiable_pattern_predicates_warn() {
        let t = Transformer::compile("/a[price<abc]/b => drop").unwrap();
        assert_eq!(t.warnings.len(), 1);
        assert!(t.warnings[0].contains("unsatisfiable"), "{:?}", t.warnings);
    }

    #[test]
    fn schema_bounds_gate_reordering_readiness() {
        let dtd = Dtd::parse(
            "<!ELEMENT dblp ((article | inproceedings)*)>\
             <!ELEMENT article (author*, title, year, pages)>\
             <!ELEMENT inproceedings (author*, title, year, pages, booktitle?)>\
             <!ELEMENT author (#PCDATA)> <!ELEMENT title (#PCDATA)>\
             <!ELEMENT year (#PCDATA)> <!ELEMENT pages (#PCDATA)>\
             <!ELEMENT booktitle (#PCDATA)>",
        )
        .unwrap();
        let rules = "/dblp/inproceedings[author]/title => rename(t)\n\
                     /dblp/article => copy +@seen=\"1\"";
        // With the schema, the predicate rule's pending region is proven
        // bounded, so the whole rule set is reorder-ready.
        let t = Transformer::compile_with_dtd(rules, Some(&dtd)).unwrap();
        assert!(
            matches!(t.rule_bounds()[0], Some(MemoryBound::Items(_))),
            "{:?}",
            t.rule_bounds()
        );
        assert_eq!(t.rule_bounds()[1], Some(MemoryBound::Zero));
        assert!(t.reorder_ready());
        // Without it, the same predicate has no static bound.
        let bare = Transformer::compile(rules).unwrap();
        assert!(
            matches!(bare.rule_bounds()[0], Some(MemoryBound::Unbounded { .. })),
            "{:?}",
            bare.rule_bounds()
        );
        assert!(!bare.reorder_ready());
        // Out-of-surface patterns (position()) carry no bound at all and
        // block reordering even under a schema.
        let pos = Transformer::compile_with_dtd("/dblp/article[position()=1] => drop", Some(&dtd))
            .unwrap();
        assert_eq!(pos.rule_bounds(), [None]);
        assert!(!pos.reorder_ready());
        // The bounds are advisory: output is identical with and without.
        let doc = "<dblp><inproceedings><author>a</author><title>T</title>\
                   </inproceedings></dblp>";
        assert_eq!(
            t.transform(doc.as_bytes()).unwrap().xml,
            bare.transform(doc.as_bytes()).unwrap().xml,
        );
    }
}
