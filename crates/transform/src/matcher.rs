//! The streaming pattern matcher: which rule applies to each element?
//!
//! An NFA over the event stream, in the spirit of the HPDT's
//! configuration sets (§3.3 of the paper) but specialized for *per-element
//! decisions* instead of buffered item selection: every element must be
//! assigned a verdict — matched by rule `r`, or matched by no rule — and
//! the verdict must be delivered as early as the stream permits, because
//! the rewriter buffers output until it arrives.
//!
//! Each open element carries a *frontier* of partial-match states
//! `(rule, next_step, conds)`: the pattern's steps `0..next_step` matched
//! along the path down to this element, contingent on the condition set
//! `conds` — deferred predicate instances whose truth the stream has not
//! yet revealed. This mirrors the BPDT timing table of §3.2:
//!
//! * category 1 (`[@attr…]`), `position()`, and attribute functions are
//!   decided at the begin event itself — no condition is created;
//! * categories 2/5 (`[text()…]`, `[child op v]`) and text functions wait
//!   for a text event (true) or the owner's end event (false);
//! * categories 3/4 (`[child]`, `[child@attr…]`) wait for a child begin
//!   (true) or the owner's end event (false);
//! * `last()` inverts the timing: *false* at a later matching sibling's
//!   begin, *true* at the parent's end — the only condition owned by the
//!   candidate's parent rather than the step's own element.
//!
//! When a pattern completes at an element, the element gets a *candidate*
//! `(rule, conds)`. The element matches rule `r` iff any of `r`'s
//! candidates has all conditions true (OR across derivations, AND within
//! one). Rules apply first-match-wins in file order, so the verdict for
//! an element is the lowest-numbered matching rule — which may stay
//! undecided while an earlier rule's conditions are pending even if a
//! later rule already matched.

use std::collections::HashMap;

use xsq_xml::{Attribute, Sym};
use xsq_xpath::{Comparison, FnArg, FnTest, NodeTest, Predicate, RuleSet};

/// Index of a condition in the matcher's arena.
type CondId = u32;

/// Identifier handed to the rewriter for an element whose verdict is
/// still open; the eventual [`Resolution`] carries it back.
pub type PendingId = u32;

/// The matcher's verdict for one element, delivered at its begin event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchDecision {
    /// Verdict known now: `Some(rule)` or `None` for "no rule matches"
    /// (the identity action).
    Decided(Option<usize>),
    /// Verdict depends on events not yet seen; a [`Resolution`] with this
    /// id will follow, at the latest when the element's last open
    /// ancestor ends.
    Pending(PendingId),
}

/// A deferred verdict coming in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resolution {
    pub pending: PendingId,
    /// The matching rule, or `None` for "no rule matches".
    pub rule: Option<usize>,
}

/// How a text-owned condition tests a text run.
#[derive(Debug, Clone)]
enum TextTest {
    /// `[text()]` — any text run at all.
    Exists,
    /// `[text() op v]`.
    Cmp(Comparison),
    /// `contains(text(),v)` etc.
    Fn(FnTest),
}

impl TextTest {
    fn eval(&self, text: &str) -> bool {
        match self {
            TextTest::Exists => true,
            TextTest::Cmp(c) => c.eval(text),
            TextTest::Fn(f) => f.eval(text),
        }
    }
}

/// A condition watching child begin events of its owner.
#[derive(Debug, Clone)]
struct ChildCond {
    cond: CondId,
    child: Sym,
    /// `[child]` when `None`; `[child@attr…]` when `Some`.
    attr: Option<(Sym, Option<Comparison>)>,
}

/// A condition watching text events of matching child elements.
#[derive(Debug, Clone)]
struct ChildTextCond {
    cond: CondId,
    child: Sym,
    cmp: Comparison,
}

/// A `last()` condition: owned by the candidate's parent; falsified by a
/// later sibling begin passing `test`, confirmed at the owner's end.
#[derive(Debug, Clone)]
struct LastCond {
    cond: CondId,
    test: NodeTest,
}

/// One partial-match state: pattern steps `0..step` of `rule` matched on
/// the path to the owning element, contingent on `conds`.
#[derive(Debug, Clone, PartialEq)]
struct State {
    rule: u32,
    step: u32,
    conds: Vec<CondId>,
}

/// One completed pattern at an element.
#[derive(Debug, Clone)]
struct Candidate {
    rule: u32,
    conds: Vec<CondId>,
}

/// An element whose verdict is awaiting condition resolutions.
#[derive(Debug)]
struct PendingElem {
    candidates: Vec<Candidate>,
}

/// Per-open-element matcher bookkeeping.
#[derive(Debug, Default)]
struct Frame {
    /// States whose next step is matched against this element's children
    /// (or, for closure steps, any descendant).
    states: Vec<State>,
    /// Conditions watching this element's own text runs.
    text_conds: Vec<(CondId, TextTest)>,
    /// Conditions watching this element's child begin events.
    child_conds: Vec<ChildCond>,
    /// Conditions watching text events of this element's children.
    child_text_conds: Vec<ChildTextCond>,
    /// `last()` conditions owned by this element as the candidates'
    /// parent.
    last_conds: Vec<LastCond>,
    /// Element children seen so far, by tag — the `position()` counters.
    child_counts: HashMap<Sym, u32>,
    /// Total element children seen so far (wildcard positions).
    total_children: u32,
}

/// The streaming matcher. Feed it the begin/text/end events of one
/// document; it returns verdicts and resolutions.
pub struct Matcher<'r> {
    rules: &'r RuleSet,
    /// `stack[0]` is the virtual document frame; elements above it.
    stack: Vec<Frame>,
    /// Condition values; `None` while pending.
    conds: Vec<Option<bool>>,
    /// Count of unresolved conditions (tracked incrementally — the arena
    /// is append-only, so recounting it per event would be quadratic).
    live_conds: usize,
    /// Pending elements whose verdict depends on each condition.
    dependents: HashMap<CondId, Vec<PendingId>>,
    pending: HashMap<PendingId, PendingElem>,
    next_pending: PendingId,
    /// Peak live condition count, for the stats report.
    pub peak_conds: usize,
}

impl<'r> Matcher<'r> {
    pub fn new(rules: &'r RuleSet) -> Self {
        let mut doc = Frame::default();
        for (r, _) in rules.rules.iter().enumerate() {
            doc.states.push(State {
                rule: r as u32,
                step: 0,
                conds: Vec::new(),
            });
        }
        Matcher {
            rules,
            stack: vec![doc],
            conds: Vec::new(),
            live_conds: 0,
            dependents: HashMap::new(),
            pending: HashMap::new(),
            next_pending: 0,
            peak_conds: 0,
        }
    }

    fn new_cond(&mut self) -> CondId {
        let id = self.conds.len() as CondId;
        self.conds.push(None);
        self.live_conds += 1;
        self.peak_conds = self.peak_conds.max(self.live_conds);
        id
    }

    /// Process a begin event. Returns the verdict for the new element and
    /// any resolutions of earlier pending elements this event triggered
    /// (child-condition confirmations, `last()` falsifications).
    pub fn begin(
        &mut self,
        name: Sym,
        attributes: &[Attribute],
    ) -> (MatchDecision, Vec<Resolution>) {
        let mut resolved: Vec<CondId> = Vec::new();

        // Parent bookkeeping: sibling counters, last() falsification,
        // child-condition confirmation — all *before* this element's own
        // conditions exist.
        {
            let parent = self.stack.last_mut().expect("document frame");
            parent.total_children += 1;
            *parent.child_counts.entry(name).or_insert(0) += 1;

            for lc in &parent.last_conds {
                if self.conds[lc.cond as usize].is_none() && last_test_matches(&lc.test, name) {
                    self.conds[lc.cond as usize] = Some(false);
                    self.live_conds -= 1;
                    resolved.push(lc.cond);
                }
            }
            for cc in &parent.child_conds {
                if self.conds[cc.cond as usize].is_none() && cc.child == name {
                    let holds = match &cc.attr {
                        None => true,
                        Some((attr, cmp)) => attributes
                            .iter()
                            .find(|a| a.name == *attr)
                            .is_some_and(|a| cmp.as_ref().is_none_or(|c| c.eval(&a.value))),
                    };
                    if holds {
                        self.conds[cc.cond as usize] = Some(true);
                        self.live_conds -= 1;
                        resolved.push(cc.cond);
                    }
                }
            }
        }

        // Advance the frontier into the new element.
        let tag = name.as_str();
        let mut frame = Frame::default();
        let mut candidates: Vec<Candidate> = Vec::new();
        // One predicate instance per (rule, step) at this element, shared
        // across derivations: `[b]` asked twice is the same question.
        let mut pred_cache: HashMap<(u32, u32), PredOutcome> = HashMap::new();
        // Conditions to attach to the *parent* (last() only), deferred to
        // dodge the double borrow.
        let mut parent_last: Vec<LastCond> = Vec::new();

        let parent_idx = self.stack.len() - 1;
        let parent_states = std::mem::take(&mut self.stack[parent_idx].states);
        for state in &parent_states {
            let step = &self.rules.rules[state.rule as usize].pattern.steps[state.step as usize];
            if step.axis == xsq_xpath::Axis::Closure && !frame.states.contains(state) {
                // Descendant steps stay live arbitrarily deep.
                frame.states.push(state.clone());
            }
            if !step.test.matches(tag) {
                continue;
            }
            let outcome = match pred_cache.get(&(state.rule, state.step)) {
                Some(o) => o.clone(),
                None => {
                    let o = self.eval_predicate(
                        state.rule,
                        state.step,
                        name,
                        attributes,
                        &mut frame,
                        &mut parent_last,
                    );
                    pred_cache.insert((state.rule, state.step), o.clone());
                    o
                }
            };
            let mut conds = state.conds.clone();
            match outcome {
                PredOutcome::False => continue,
                PredOutcome::True => {}
                PredOutcome::Deferred(cid) => {
                    if !conds.contains(&cid) {
                        conds.push(cid);
                    }
                }
            }
            let pattern_len = self.rules.rules[state.rule as usize].pattern.steps.len() as u32;
            if state.step + 1 == pattern_len {
                candidates.push(Candidate {
                    rule: state.rule,
                    conds,
                });
            } else {
                let next = State {
                    rule: state.rule,
                    step: state.step + 1,
                    conds,
                };
                if !frame.states.contains(&next) {
                    frame.states.push(next);
                }
            }
        }
        self.stack[parent_idx].states = parent_states;
        self.stack[parent_idx].last_conds.extend(parent_last);
        self.stack.push(frame);

        // Verdict for the new element.
        let decision = self.decide(candidates);
        (decision, self.drain_resolutions(resolved))
    }

    /// Process a text event, with the owning element's tag (needed to
    /// check the parent's `[child op v]` conditions).
    pub fn text_of(&mut self, element: Sym, text: &str) -> Vec<Resolution> {
        let mut resolved: Vec<CondId> = Vec::new();
        let top = self.stack.len() - 1;
        for (cid, test) in &self.stack[top].text_conds {
            if self.conds[*cid as usize].is_none() && test.eval(text) {
                self.conds[*cid as usize] = Some(true);
                self.live_conds -= 1;
                resolved.push(*cid);
            }
        }
        if top >= 1 {
            for ctc in &self.stack[top - 1].child_text_conds {
                if self.conds[ctc.cond as usize].is_none()
                    && ctc.child == element
                    && ctc.cmp.eval(text)
                {
                    self.conds[ctc.cond as usize] = Some(true);
                    self.live_conds -= 1;
                    resolved.push(ctc.cond);
                }
            }
        }
        self.drain_resolutions(resolved)
    }

    /// Process the end event of the current element: every condition it
    /// owns resolves now — text/child conditions that never fired are
    /// false, `last()` conditions that were never falsified are true.
    pub fn end(&mut self) -> Vec<Resolution> {
        let frame = self.stack.pop().expect("balanced events");
        let mut resolved: Vec<CondId> = Vec::new();
        let mut settle = |cid: CondId, value: bool| {
            if self.conds[cid as usize].is_none() {
                self.conds[cid as usize] = Some(value);
                self.live_conds -= 1;
                resolved.push(cid);
            }
        };
        for (cid, _) in &frame.text_conds {
            settle(*cid, false);
        }
        for cc in &frame.child_conds {
            settle(cc.cond, false);
        }
        for ctc in &frame.child_text_conds {
            settle(ctc.cond, false);
        }
        for lc in &frame.last_conds {
            settle(lc.cond, true);
        }
        self.drain_resolutions(resolved)
    }

    /// Evaluate the predicate of `rules[rule].steps[step]` against the
    /// element now beginning. Immediate predicates return a boolean;
    /// deferred ones allocate a condition on the right owner.
    fn eval_predicate(
        &mut self,
        rule: u32,
        step: u32,
        name: Sym,
        attributes: &[Attribute],
        frame: &mut Frame,
        parent_last: &mut Vec<LastCond>,
    ) -> PredOutcome {
        // Copy the long-lived rules reference out of `self` so predicate
        // borrows don't pin `self` (deferred arms need `&mut self`).
        let rules = self.rules;
        let step_ref = &rules.rules[rule as usize].pattern.steps[step as usize];
        let Some(pred) = &step_ref.predicate else {
            return PredOutcome::True;
        };
        let attr_value = |n: &str| attributes.iter().find(|a| a.name == *n).map(|a| &a.value);
        match pred {
            Predicate::Attr { name: attr, cmp } => match attr_value(attr) {
                None => PredOutcome::False,
                Some(v) => bool_outcome(cmp.as_ref().is_none_or(|c| c.eval(v))),
            },
            Predicate::Func {
                arg: FnArg::Attr(attr),
                test,
            } => bool_outcome(attr_value(attr).is_some_and(|v| test.eval(v))),
            Predicate::Position { cmp } => {
                // Counters were incremented before matching, so the count
                // for this tag is this element's 1-based position among
                // siblings passing the step's node test.
                let parent = &self.stack[self.stack.len() - 1];
                let pos = match &step_ref.test {
                    NodeTest::Name(_) => parent.child_counts.get(&name).copied().unwrap_or(1),
                    NodeTest::Wildcard => parent.total_children,
                };
                bool_outcome(xsq_xpath::value::num_compare(
                    pos as f64,
                    cmp.op,
                    cmp.rhs.as_number(),
                ))
            }
            Predicate::Text { cmp } => {
                let cid = self.new_cond();
                let test = match cmp {
                    None => TextTest::Exists,
                    Some(c) => TextTest::Cmp(c.clone()),
                };
                frame.text_conds.push((cid, test));
                PredOutcome::Deferred(cid)
            }
            Predicate::Func {
                arg: FnArg::Text,
                test,
            } => {
                let cid = self.new_cond();
                frame.text_conds.push((cid, TextTest::Fn(test.clone())));
                PredOutcome::Deferred(cid)
            }
            Predicate::Child { name: child } => {
                let cid = self.new_cond();
                frame.child_conds.push(ChildCond {
                    cond: cid,
                    child: Sym::intern(child),
                    attr: None,
                });
                PredOutcome::Deferred(cid)
            }
            Predicate::ChildAttr { child, attr, cmp } => {
                let cid = self.new_cond();
                frame.child_conds.push(ChildCond {
                    cond: cid,
                    child: Sym::intern(child),
                    attr: Some((Sym::intern(attr), cmp.clone())),
                });
                PredOutcome::Deferred(cid)
            }
            Predicate::ChildText { child, cmp } => {
                let cid = self.new_cond();
                frame.child_text_conds.push(ChildTextCond {
                    cond: cid,
                    child: Sym::intern(child),
                    cmp: cmp.clone(),
                });
                PredOutcome::Deferred(cid)
            }
            Predicate::Last => {
                let cid = self.new_cond();
                parent_last.push(LastCond {
                    cond: cid,
                    test: step_ref.test.clone(),
                });
                PredOutcome::Deferred(cid)
            }
        }
    }

    /// Turn an element's candidate list into a verdict, registering a
    /// pending entry when the stream hasn't decided yet.
    fn decide(&mut self, candidates: Vec<Candidate>) -> MatchDecision {
        if candidates.is_empty() {
            return MatchDecision::Decided(None);
        }
        match self.verdict(&candidates) {
            Some(v) => MatchDecision::Decided(v),
            None => {
                let id = self.next_pending;
                self.next_pending += 1;
                for cand in &candidates {
                    for &cid in &cand.conds {
                        if self.conds[cid as usize].is_none() {
                            self.dependents.entry(cid).or_default().push(id);
                        }
                    }
                }
                self.pending.insert(id, PendingElem { candidates });
                MatchDecision::Pending(id)
            }
        }
    }

    /// First-match-wins evaluation over the candidate list. `None` means
    /// "still pending"; `Some(None)` means "no rule matches".
    fn verdict(&self, candidates: &[Candidate]) -> Option<Option<usize>> {
        // Walk rules in priority order; a rule's own candidates OR
        // together.
        let mut rules: Vec<u32> = candidates.iter().map(|c| c.rule).collect();
        rules.sort_unstable();
        rules.dedup();
        for rule in rules {
            let mut any_pending = false;
            for cand in candidates.iter().filter(|c| c.rule == rule) {
                let mut all_true = true;
                let mut dead = false;
                for &cid in &cand.conds {
                    match self.conds[cid as usize] {
                        Some(true) => {}
                        Some(false) => {
                            dead = true;
                            break;
                        }
                        None => all_true = false,
                    }
                }
                if dead {
                    continue;
                }
                if all_true {
                    return Some(Some(rule as usize));
                }
                any_pending = true;
            }
            if any_pending {
                // An earlier rule is still undecided; everything after it
                // must wait (first match wins).
                return None;
            }
        }
        Some(None)
    }

    /// Re-evaluate pending elements touched by newly resolved conditions.
    fn drain_resolutions(&mut self, resolved: Vec<CondId>) -> Vec<Resolution> {
        let mut out = Vec::new();
        for cid in resolved {
            let Some(deps) = self.dependents.remove(&cid) else {
                continue;
            };
            for pid in deps {
                let Some(pe) = self.pending.get(&pid) else {
                    continue;
                };
                if let Some(v) = self.verdict(&pe.candidates) {
                    self.pending.remove(&pid);
                    out.push(Resolution {
                        pending: pid,
                        rule: v,
                    });
                }
            }
        }
        out
    }

    /// Pending verdicts still open (must be 0 after the root closes).
    pub fn open_pendings(&self) -> usize {
        self.pending.len()
    }
}

/// Outcome of evaluating one predicate instance at a begin event.
#[derive(Debug, Clone)]
enum PredOutcome {
    True,
    False,
    Deferred(CondId),
}

fn bool_outcome(b: bool) -> PredOutcome {
    if b {
        PredOutcome::True
    } else {
        PredOutcome::False
    }
}

fn last_test_matches(test: &NodeTest, name: Sym) -> bool {
    match test {
        NodeTest::Name(n) => name == n.as_str(),
        NodeTest::Wildcard => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xsq_xml::parse_to_events;
    use xsq_xml::SaxEvent;

    /// Run the matcher over a document, returning each element's final
    /// verdict in begin-event order.
    fn verdicts(rules: &str, doc: &str) -> Vec<Option<usize>> {
        let rs = RuleSet::parse(rules).unwrap();
        let mut m = Matcher::new(&rs);
        let events = parse_to_events(doc.as_bytes()).unwrap();
        let mut order: Vec<MatchDecision> = Vec::new();
        let mut settled: HashMap<PendingId, Option<usize>> = HashMap::new();
        for ev in &events {
            let res = match ev {
                SaxEvent::Begin {
                    name, attributes, ..
                } => {
                    let (d, res) = m.begin(*name, attributes);
                    order.push(d);
                    res
                }
                SaxEvent::Text { element, text, .. } => m.text_of(*element, text),
                SaxEvent::End { .. } => m.end(),
                _ => Vec::new(),
            };
            for r in res {
                settled.insert(r.pending, r.rule);
            }
        }
        assert_eq!(m.open_pendings(), 0, "verdicts must settle by EOF");
        order
            .into_iter()
            .map(|d| match d {
                MatchDecision::Decided(v) => v,
                MatchDecision::Pending(id) => settled[&id],
            })
            .collect()
    }

    #[test]
    fn immediate_attr_predicates_decide_at_begin() {
        let v = verdicts(
            "/a/b[@id=1] => drop",
            r#"<a><b id="1"/><b id="2"/><c/></a>"#,
        );
        assert_eq!(v, [None, Some(0), None, None]);
    }

    #[test]
    fn child_predicates_defer_until_seen_or_end() {
        let v = verdicts("/a/b[c] => rename(x)", "<a><b><c/></b><b><d/></b></a>");
        assert_eq!(v, [None, Some(0), None, None, None]);
    }

    #[test]
    fn closure_matches_all_depths() {
        let v = verdicts("//x => drop", "<a><x><x/></x><b><x/></b></a>");
        assert_eq!(v, [None, Some(0), Some(0), None, Some(0)]);
    }

    #[test]
    fn first_match_wins_waits_for_earlier_rules() {
        // Rule 0 (pending on [c]) beats rule 1 (immediate) when c shows.
        let rules = "/a/b[c] => drop\n/a/b => rename(x)";
        let v = verdicts(rules, "<a><b><c/></b><b><d/></b></a>");
        assert_eq!(v, [None, Some(0), None, Some(1), None]);
    }

    #[test]
    fn position_and_last_verdicts() {
        let v = verdicts("/a/b[2] => drop", "<a><b/><b/><b/></a>");
        assert_eq!(v, [None, None, Some(0), None]);
        let v = verdicts("/a/b[last()] => drop", "<a><b/><b/><c/></a>");
        assert_eq!(v, [None, None, Some(0), None]);
        // last() among a name test ignores other tags.
        let v = verdicts("/a/b[position()=last()] => drop", "<a><b/><c/></a>");
        assert_eq!(v, [None, Some(0), None]);
    }

    #[test]
    fn text_predicates() {
        let v = verdicts(
            "//b[text()%lo] => wrap(hit)",
            "<a><b>hello</b><b>nope</b></a>",
        );
        assert_eq!(v, [None, Some(0), None]);
        let v = verdicts(
            "//b[contains(text(),ell)] => drop",
            "<a><b>hello</b><b>x</b></a>",
        );
        assert_eq!(v, [None, Some(0), None]);
    }

    #[test]
    fn recursive_document_multiple_derivations() {
        // //b//c: the inner c matches via either b; one derivation
        // suffices.
        let v = verdicts("//b//c => drop", "<a><b><b><c/></b></b></a>");
        assert_eq!(v, [None, None, None, Some(0)]);
    }

    #[test]
    fn pending_conds_on_ancestors_settle_late() {
        // [year=2002] on the ancestor resolves after the name closed.
        let v = verdicts(
            "//pub[year=2002]//name => wrap(hit)",
            "<pub><book><name>N</name></book><year>2002</year></pub>",
        );
        assert_eq!(v, [None, None, Some(0), None]);
        let v = verdicts(
            "//pub[year=2002]//name => wrap(hit)",
            "<pub><book><name>N</name></book><year>1999</year></pub>",
        );
        assert_eq!(v, [None, None, None, None]);
    }
}
