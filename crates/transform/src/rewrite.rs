//! The output rewriter: turns events plus matcher verdicts into a
//! serialized document, buffering only what undecided verdicts force it
//! to buffer.
//!
//! This is the transform analogue of the paper's buffered items (§3.4):
//! where the HPDT's buffers hold *potential output* pending predicate
//! flags, the rewriter's frames hold *regions of the output document*
//! pending a rule verdict. The three verdict timings map to three
//! emission modes:
//!
//! * **decided at begin** (the common case — no candidate patterns, or
//!   only immediate predicates): the rewritten begin tag streams out at
//!   once, nothing is buffered, and the end event emits the matching
//!   rewritten end tag;
//! * **decided `drop` at begin**: the whole subtree is skipped as it
//!   streams past — zero buffering, the transform analogue of dead-state
//!   pruning;
//! * **pending at begin**: a frame buffers the element's rewritten
//!   content until its [`Resolution`](crate::matcher::Resolution)
//!   arrives. Frames nest (a pending element inside a pending element),
//!   and resolve out of order — a frame renders when its verdict is in,
//!   its end event has been seen, *and* every nested frame has rendered;
//!   rendering cascades upward and flushes through the root.
//!
//! Because verdicts depend only on the event stream — never on how the
//! input bytes were chunked — the concatenated output of incremental
//! [`flush`](Rewriter::flush) calls is byte-identical for every chunking
//! of the same document.

use xsq_xml::entities::{escape_attr_into, escape_text_into};
use xsq_xml::{Attribute, Sym};
use xsq_xpath::{RuleAction, Shape};

use crate::matcher::PendingId;

/// Where output of the current element goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sink {
    Root,
    Frame(usize),
}

/// One buffered piece of a frame's content. A `Frame` slot is a
/// placeholder for a pending child region; the child finds it again via
/// its own `seg_index`, so the slot itself carries no payload.
#[derive(Debug)]
enum Seg {
    Bytes(String),
    Frame,
}

/// A buffered output region awaiting a verdict.
#[derive(Debug)]
struct Frame {
    parent: Sink,
    /// Index of this frame's `Seg::Frame` slot in the parent's segments.
    seg_index: usize,
    name: Sym,
    attributes: Vec<Attribute>,
    /// The verdict: `None` until resolved; `Some(None)` = no rule (copy).
    action: Option<Option<usize>>,
    closed: bool,
    /// Nested frames not yet rendered to bytes.
    pending_children: usize,
    segs: Vec<Seg>,
    /// Bytes buffered in this frame's `Bytes` segments.
    buffered: usize,
}

/// Stack entry per open input element.
#[derive(Debug)]
enum OpenElem {
    /// Verdict was known at begin: the begin tag went out already; emit
    /// this end text at the end event.
    Streamed { end_text: String },
    /// Verdict `drop`: the whole subtree is suppressed.
    Dropped,
    /// Verdict pending: content goes into the frame.
    Framed { frame: usize },
}

/// Counters reported with the transform output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransformStats {
    /// Elements in the input document.
    pub elements: u64,
    /// Elements a rule matched (including `drop`).
    pub matched: u64,
    /// Elements whose verdict was still open at their begin event.
    pub deferred: u64,
    /// Peak bytes buffered awaiting verdicts — the streaming-memory
    /// figure of merit; 0 when every verdict lands at begin time.
    pub peak_buffered: usize,
    /// Total output bytes.
    pub bytes_out: u64,
}

/// The rewriter. Drive it with events + verdicts from the matcher; pull
/// finished output with [`flush`](Self::flush).
pub struct Rewriter<'r> {
    rules: &'r [xsq_xpath::Rule],
    open: Vec<OpenElem>,
    frames: Vec<Frame>,
    root_segs: Vec<Seg>,
    root_pending: usize,
    /// Root segments already flushed out.
    root_flushed: usize,
    /// Map from matcher pending ids to frame indices.
    by_pending: Vec<(PendingId, usize)>,
    /// Bytes currently buffered across all frames and queued root
    /// segments — tracked incrementally; recounting on every push would
    /// be quadratic in the number of frames.
    buffered_now: usize,
    out: String,
    pub stats: TransformStats,
}

impl<'r> Rewriter<'r> {
    pub fn new(rules: &'r [xsq_xpath::Rule]) -> Self {
        Rewriter {
            rules,
            open: Vec::new(),
            frames: Vec::new(),
            root_segs: Vec::new(),
            root_pending: 0,
            root_flushed: 0,
            by_pending: Vec::new(),
            buffered_now: 0,
            out: String::new(),
            stats: TransformStats::default(),
        }
    }

    /// Is the element stream currently inside a dropped subtree?
    fn suppressed(&self) -> bool {
        matches!(self.open.last(), Some(OpenElem::Dropped))
    }

    /// The innermost unrendered frame enclosing the cursor, if any.
    fn current_sink(&self) -> Sink {
        for e in self.open.iter().rev() {
            if let OpenElem::Framed { frame } = e {
                return Sink::Frame(*frame);
            }
        }
        Sink::Root
    }

    /// Append to a sink through `write`, which serializes directly into
    /// the destination buffer (no intermediate allocation). Byte and
    /// buffering accounting happens here, from the length delta.
    fn with_sink(&mut self, sink: Sink, write: impl FnOnce(&mut String)) {
        match sink {
            Sink::Root if self.root_flushed == self.root_segs.len() => {
                // Nothing queued behind a pending frame: stream straight
                // through.
                let before = self.out.len();
                write(&mut self.out);
                self.stats.bytes_out += (self.out.len() - before) as u64;
            }
            Sink::Root => {
                // An unresolved frame sits earlier in the root; bytes
                // must queue behind it to keep document order.
                if !matches!(self.root_segs.last(), Some(Seg::Bytes(_))) {
                    self.root_segs.push(Seg::Bytes(String::new()));
                }
                let Some(Seg::Bytes(s)) = self.root_segs.last_mut() else {
                    unreachable!("just ensured a byte segment");
                };
                let before = s.len();
                write(s);
                self.buffered_now += s.len() - before;
                self.stats.peak_buffered = self.stats.peak_buffered.max(self.buffered_now);
            }
            Sink::Frame(f) => {
                let frame = &mut self.frames[f];
                if !matches!(frame.segs.last(), Some(Seg::Bytes(_))) {
                    frame.segs.push(Seg::Bytes(String::new()));
                }
                let Some(Seg::Bytes(s)) = frame.segs.last_mut() else {
                    unreachable!("just ensured a byte segment");
                };
                let before = s.len();
                write(s);
                let added = s.len() - before;
                frame.buffered += added;
                self.buffered_now += added;
                self.stats.peak_buffered = self.stats.peak_buffered.max(self.buffered_now);
            }
        }
    }

    /// Process a begin event with the verdict known at begin, or open a
    /// frame for a pending one.
    pub fn begin(&mut self, name: Sym, attributes: &[Attribute], decision: BeginDecision) {
        self.stats.elements += 1;
        if self.suppressed() {
            // Anything inside a dropped subtree is dropped with it,
            // regardless of its own verdict.
            self.open.push(OpenElem::Dropped);
            return;
        }
        match decision {
            BeginDecision::Decided(rule) => {
                if let Some(r) = rule {
                    self.stats.matched += 1;
                    if self.rules[r].action.shape == Shape::Drop {
                        self.open.push(OpenElem::Dropped);
                        return;
                    }
                }
                let rules = self.rules;
                let action = rule.map(|r| &rules[r].action);
                let sink = self.current_sink();
                self.with_sink(sink, |s| write_begin_tag(s, name, attributes, action));
                self.open.push(OpenElem::Streamed {
                    end_text: end_tag(name, action),
                });
            }
            BeginDecision::Pending(pid) => {
                self.stats.deferred += 1;
                let sink = self.current_sink();
                let seg_index = match sink {
                    Sink::Root => {
                        self.root_pending += 1;
                        self.root_segs.push(Seg::Frame);
                        self.root_segs.len() - 1
                    }
                    Sink::Frame(f) => {
                        self.frames[f].pending_children += 1;
                        let idx = self.frames[f].segs.len();
                        self.frames[f].segs.push(Seg::Frame);
                        idx
                    }
                };
                let frame = Frame {
                    parent: sink,
                    seg_index,
                    name,
                    attributes: attributes.to_vec(),
                    action: None,
                    closed: false,
                    pending_children: 0,
                    segs: Vec::new(),
                    buffered: 0,
                };
                self.by_pending.push((pid, self.frames.len()));
                self.open.push(OpenElem::Framed {
                    frame: self.frames.len(),
                });
                self.frames.push(frame);
            }
        }
    }

    /// Process a text event.
    pub fn text(&mut self, text: &str) {
        if self.suppressed() {
            return;
        }
        let sink = self.current_sink();
        self.with_sink(sink, |s| escape_text_into(text, s));
    }

    /// Process an end event.
    pub fn end(&mut self) {
        match self.open.pop().expect("balanced events") {
            OpenElem::Dropped => {}
            OpenElem::Streamed { end_text } => {
                let sink = self.current_sink();
                self.with_sink(sink, |s| s.push_str(&end_text));
            }
            OpenElem::Framed { frame } => {
                self.frames[frame].closed = true;
                self.try_render(frame);
            }
        }
    }

    /// Deliver a matcher resolution for a pending element.
    pub fn resolve(&mut self, pid: PendingId, rule: Option<usize>) {
        let Some(pos) = self.by_pending.iter().position(|(p, _)| *p == pid) else {
            // The element was inside a dropped subtree: no frame exists.
            return;
        };
        let (_, fid) = self.by_pending.swap_remove(pos);
        if rule.is_some() {
            self.stats.matched += 1;
        }
        self.frames[fid].action = Some(rule);
        self.try_render(fid);
    }

    /// Render the frame if its verdict is in, its element closed, and all
    /// nested frames rendered; cascade into the parent.
    fn try_render(&mut self, fid: usize) {
        let f = &self.frames[fid];
        if f.action.is_none() || !f.closed || f.pending_children > 0 {
            return;
        }
        let rule = f.action.expect("checked");
        let dropped = rule.is_some_and(|r| self.rules[r].action.shape == Shape::Drop);
        let mut rendered = String::new();
        if !dropped {
            let action = rule.map(|r| &self.rules[r].action);
            write_begin_tag(&mut rendered, f.name, &f.attributes, action);
            for seg in &f.segs {
                match seg {
                    Seg::Bytes(b) => rendered.push_str(b),
                    Seg::Frame => unreachable!("pending_children was 0"),
                }
            }
            rendered.push_str(&end_tag(f.name, action));
        }
        // Splice into the parent and release this frame's buffer; the
        // rendered region stays buffered (now in the parent) until it
        // flushes through the root.
        let parent = self.frames[fid].parent;
        let seg_index = self.frames[fid].seg_index;
        self.buffered_now -= self.frames[fid].buffered;
        self.buffered_now += rendered.len();
        self.stats.peak_buffered = self.stats.peak_buffered.max(self.buffered_now);
        self.frames[fid].segs = Vec::new();
        self.frames[fid].buffered = 0;
        match parent {
            Sink::Root => {
                self.root_segs[seg_index] = Seg::Bytes(rendered);
                self.root_pending -= 1;
                self.flush_root();
            }
            Sink::Frame(p) => {
                let pf = &mut self.frames[p];
                pf.buffered += rendered.len();
                pf.segs[seg_index] = Seg::Bytes(rendered);
                pf.pending_children -= 1;
                self.try_render(p);
            }
        }
    }

    /// Move every leading byte segment of the root into the output.
    fn flush_root(&mut self) {
        while self.root_flushed < self.root_segs.len() {
            match &mut self.root_segs[self.root_flushed] {
                Seg::Frame => break,
                Seg::Bytes(b) => {
                    let b = std::mem::take(b);
                    self.stats.bytes_out += b.len() as u64;
                    self.buffered_now -= b.len();
                    self.out.push_str(&b);
                    self.root_flushed += 1;
                }
            }
        }
        if self.root_flushed == self.root_segs.len() {
            // Fully drained: reclaim the spent segment slots so a long
            // document with rare pendings doesn't accumulate them.
            self.root_segs.clear();
            self.root_flushed = 0;
        }
    }

    /// Take the output produced so far.
    pub fn flush(&mut self) -> String {
        std::mem::take(&mut self.out)
    }

    /// Finish the document: everything must have rendered.
    pub fn finish(mut self) -> (String, TransformStats) {
        self.flush_root();
        debug_assert_eq!(self.root_pending, 0, "verdicts settle by document end");
        debug_assert!(self.open.is_empty(), "events balance by document end");
        (self.out, self.stats)
    }
}

/// A begin-event verdict as the rewriter consumes it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeginDecision {
    Decided(Option<usize>),
    Pending(PendingId),
}

/// The element and wrapper names an action rewrites a tag to.
fn tag_names(name: Sym, action: Option<&RuleAction>) -> (&str, Option<&str>) {
    let orig = name.as_str();
    match action.map(|a| &a.shape) {
        None | Some(Shape::Copy) => (orig, None),
        Some(Shape::Rename(n)) => (n.as_str(), None),
        Some(Shape::Wrap(w)) => (orig, Some(w.as_str())),
        Some(Shape::Drop) => unreachable!("drop emits no tags"),
    }
}

/// Serialize the rewritten begin tag for an element under an action
/// (`None` = identity copy) directly into `buf`. `wrap` puts the wrapper
/// outside the (possibly attribute-rewritten) original tag. The no-op
/// attribute path writes straight from the parser's attributes — the
/// owned pair vector is materialized only when attribute ops apply.
fn write_begin_tag(
    buf: &mut String,
    name: Sym,
    attributes: &[Attribute],
    action: Option<&RuleAction>,
) {
    let (out_name, wrapper) = tag_names(name, action);
    if let Some(w) = wrapper {
        buf.push('<');
        buf.push_str(w);
        buf.push('>');
    }
    buf.push('<');
    buf.push_str(out_name);
    match action {
        Some(a) if !a.attr_ops.is_empty() => {
            let plain: Vec<(String, String)> = attributes
                .iter()
                .map(|at| (at.name.as_str().to_string(), at.value.clone()))
                .collect();
            for (n, v) in &a.apply_attrs(&plain) {
                buf.push(' ');
                buf.push_str(n);
                buf.push_str("=\"");
                escape_attr_into(v, buf);
                buf.push('"');
            }
        }
        _ => {
            for at in attributes {
                buf.push(' ');
                buf.push_str(at.name.as_str());
                buf.push_str("=\"");
                escape_attr_into(&at.value, buf);
                buf.push('"');
            }
        }
    }
    buf.push('>');
}

/// The matching rewritten end tag.
fn end_tag(name: Sym, action: Option<&RuleAction>) -> String {
    let (out_name, wrapper) = tag_names(name, action);
    let mut end = String::new();
    end.push_str("</");
    end.push_str(out_name);
    end.push('>');
    if let Some(w) = wrapper {
        end.push_str("</");
        end.push_str(w);
        end.push('>');
    }
    end
}
