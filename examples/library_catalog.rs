//! Querying a bibliographic catalog — the DBLP-style workload of §6 —
//! and comparing XSQ against the study's other evaluation strategies.
//!
//! ```sh
//! cargo run --release --example library_catalog
//! ```

use std::time::Instant;

use xsq::baselines::{SaxonLike, XmltkLike};
use xsq::datagen::dblp;
use xsq::engine::{CountingSink, XPathEngine, XsqEngine};
use xsq::xml::PureParser;

fn main() {
    // A ~2 MB catalog (seeded: reruns are identical).
    let catalog = dblp::generate(2003, 2 << 20);
    println!("catalog: {} KB", catalog.len() / 1024);

    // -- 1. Ad-hoc queries with the one-call API -------------------------
    let queries = [
        "/dblp/article/title/text()",
        "/dblp/inproceedings[author]/title/text()",
        "/dblp/article[year>=2000]/title/text()",
        "/dblp/inproceedings/@key",
        "//author/count()",
    ];
    for q in queries {
        let r = xsq::engine::evaluate(q, catalog.as_bytes()).unwrap();
        let preview: Vec<&String> = r.iter().take(2).collect();
        println!("{q}\n  {} result(s), first: {preview:?}", r.len());
    }

    // -- 2. Compile once, run many times ---------------------------------
    let compiled = XsqEngine::no_closure()
        .compile_str("/dblp/inproceedings[author]/title/text()")
        .unwrap();
    println!(
        "\ncompiled HPDT: {} states, {} arcs, deterministic = {}",
        compiled.hpdt().states.len(),
        compiled.hpdt().arc_count(),
        compiled.hpdt().deterministic,
    );

    // -- 3. The §6.2 comparison in miniature ------------------------------
    let t = Instant::now();
    PureParser::run(catalog.as_bytes()).unwrap();
    let pure = t.elapsed();
    println!("\nrelative throughput on this catalog (PureParser = 1.0):");
    let query = "/dblp/inproceedings[author]/title/text()";
    for engine in [
        &xsq::engine::XsqNc as &dyn XPathEngine,
        &xsq::engine::XsqF,
        &SaxonLike,
    ] {
        let t = Instant::now();
        let r = engine.run(query, catalog.as_bytes()).unwrap();
        let total = t.elapsed();
        println!(
            "  {:8} {:.3}  ({} results, peak memory {} KB)",
            engine.name(),
            pure.as_secs_f64() / total.as_secs_f64(),
            r.results.len(),
            r.memory.total_peak_bytes() / 1024,
        );
    }
    // XMLTK runs the predicate-free variant, as in the paper's Fig. 19.
    let t = Instant::now();
    let r = XmltkLike
        .run("/dblp/inproceedings/title/text()", catalog.as_bytes())
        .unwrap();
    println!(
        "  {:8} {:.3}  ({} results, no predicate support)",
        "XMLTK",
        pure.as_secs_f64() / t.elapsed().as_secs_f64(),
        r.results.len(),
    );

    // -- 4. Streaming into a sink without materializing results ----------
    let mut sink = CountingSink::new();
    let stats = compiled
        .run_document(catalog.as_bytes(), &mut sink)
        .unwrap();
    println!(
        "\nstreamed {} results ({} KB of text) through a counting sink; \
         engine buffered at most {} KB",
        sink.results,
        sink.bytes / 1024,
        stats.memory.peak_bytes / 1024,
    );
}
