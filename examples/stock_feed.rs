//! Streaming aggregation over an unbounded feed — the scenario the
//! paper's introduction motivates (stock market updates).
//!
//! A ticker produces an endless XML stream of trades; XSQ evaluates
//! predicates, selections, and running aggregates *as events arrive*,
//! holding only undecided data. No part of the feed is ever
//! materialized.
//!
//! ```sh
//! cargo run --example stock_feed
//! ```

use xsq::engine::{Sink, XsqEngine};
use xsq::xml::{Attribute, SaxEvent};

/// A sink that prints results and running aggregates as they stream out.
struct Live {
    label: &'static str,
    results: usize,
}

impl Sink for Live {
    fn result(&mut self, value: &str) {
        self.results += 1;
        println!("  [{}] result: {value}", self.label);
    }
    fn aggregate_update(&mut self, value: f64) {
        println!("  [{}] running value: {value:.2}", self.label);
    }
}

/// Deterministic pseudo-ticker.
fn price(i: u32) -> f64 {
    100.0 + ((i * 37) % 50) as f64 - 25.0 + (i % 7) as f64 / 10.0
}

fn trade_events(i: u32) -> Vec<SaxEvent> {
    let symbol = ["ACME", "GLOBEX", "INITECH"][(i % 3) as usize];
    let text = |element: &str, text: String| SaxEvent::Text {
        element: element.into(),
        text,
        depth: 3,
    };
    let begin = |name: &str, depth: u32| SaxEvent::Begin {
        name: name.into(),
        attributes: vec![],
        depth,
    };
    let end = |name: &str, depth: u32| SaxEvent::End {
        name: name.into(),
        depth,
    };
    vec![
        SaxEvent::Begin {
            name: "trade".into(),
            attributes: vec![Attribute::new("seq", i.to_string())],
            depth: 2,
        },
        begin("symbol", 3),
        text("symbol", symbol.into()),
        end("symbol", 3),
        begin("price", 3),
        text("price", format!("{:.2}", price(i))),
        end("price", 3),
        end("trade", 2),
    ]
}

fn main() {
    // Two standing queries over the same feed. The first one's predicate
    // (`symbol=ACME`) may resolve before or after the price arrives —
    // XSQ buffers exactly that undecided window and nothing else.
    let select = XsqEngine::full()
        .compile_str("//trade[symbol=\"ACME\"]/price/text()")
        .unwrap();
    let maximum = XsqEngine::full()
        .compile_str("//trade/price/max()")
        .unwrap();

    let mut select_run = select.runner();
    let mut max_run = maximum.runner();
    let mut select_sink = Live {
        label: "ACME price",
        results: 0,
    };
    let mut max_sink = Live {
        label: "max price",
        results: 0,
    };

    // Open the (never-ending) stream.
    let prologue = [
        SaxEvent::StartDocument,
        SaxEvent::Begin {
            name: "feed".into(),
            attributes: vec![],
            depth: 1,
        },
    ];
    for ev in &prologue {
        select_run.feed(ev, &mut select_sink);
        max_run.feed(ev, &mut max_sink);
    }

    for i in 0..12 {
        println!("tick {i}:");
        for ev in trade_events(i) {
            select_run.feed(&ev, &mut select_sink);
            max_run.feed(&ev, &mut max_sink);
        }
    }

    println!(
        "\nafter 12 trades: {} ACME prices streamed, running max = {:?}",
        select_sink.results,
        max_run.aggregate_value()
    );
    println!(
        "engine memory: {} buffered entries right now, {} peak buffered bytes",
        select_run.buffered_entries(),
        select_run.memory().peak_bytes
    );
    assert_eq!(
        select_run.buffered_entries(),
        0,
        "between trades nothing is buffered"
    );
}
