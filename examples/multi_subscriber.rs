//! Many standing queries over one stream (§5's YFilter-style grouping),
//! plus stream projection.
//!
//! A publish/subscribe scenario: several subscribers register XPath
//! queries over a document feed; the engine parses each document once
//! and evaluates the whole query set against it. A projector shows how
//! much of the stream a selective query even needs to see.
//!
//! ```sh
//! cargo run --release --example multi_subscriber
//! ```

use xsq::engine::{projector::Projector, QuerySet, XsqEngine};
use xsq::xpath::parse_query;

fn main() {
    let subscriptions = [
        "//book[author]/name/text()",    // notify on attributed books
        "//book[price<11]/name/text()",  // bargain watcher
        "//pub[year=2002]//name/text()", // current-year digest
        "//price/sum()",                 // spend tracker
        "//book/count()",                // volume metric
    ];
    let set =
        QuerySet::compile(XsqEngine::full(), &subscriptions).expect("all subscriptions compile");

    // Three documents arrive on the feed.
    let feed: [&[u8]; 3] = [
        br#"<root><pub><book id="1"><price>12.00</price><name>First</name>
            <author>A</author><price type="discount">10.00</price></book>
            <book id="2"><price>14.00</price><name>Second</name><author>A</author>
            <author>B</author><price type="discount">12.00</price></book>
            <year>2002</year></pub></root>"#,
        br#"<root><pub><book><name>Anonymous</name><price>8.00</price></book>
            <year>1999</year></pub></root>"#,
        br#"<root><pub><year>2002</year></pub></root>"#,
    ];

    for (d, doc) in feed.iter().enumerate() {
        println!("document {d}: one parse, {} queries", set.len());
        let results = set.run_document(doc).expect("well-formed feed");
        for (q, r) in set.texts().zip(&results) {
            println!("  {q:<34} -> {r:?}");
        }
    }

    // The same workload through the dynamic subscription API: subscribers
    // come and go between documents, the index recompiles nothing, and
    // the dispatch index steps only the runners each event can affect.
    use xsq::{QueryId, QueryIndex, QuerySink};

    struct Notify;
    impl QuerySink for Notify {
        fn result(&mut self, id: QueryId, value: &str) {
            println!("  notify subscriber {}: {value}", id.0);
        }
    }

    let mut index = QueryIndex::new(XsqEngine::full());
    let ids = index
        .subscribe_group(&subscriptions)
        .expect("all subscriptions compile");
    println!(
        "\nquery index: {} subscriptions in {} runner groups",
        index.len(),
        index.group_count()
    );
    let mut notify = Notify;
    for (d, doc) in feed.iter().enumerate() {
        println!("document {d}:");
        index
            .run_document(doc, &mut notify)
            .expect("well-formed feed");
        if d == 0 {
            // The bargain watcher churns out after the first document …
            index.unsubscribe(ids[1]);
            // … and a new subscriber joins for the rest of the feed.
            index.subscribe("//pub/year/text()").expect("compiles");
        }
    }
    println!(
        "dispatch: {} runner touches for {} events × {} queries (loop path: {})",
        index.touches(),
        index.events(),
        index.len(),
        index.events() * index.len() as u64
    );

    // Projection: how much of the stream does a selective subscription
    // actually need?
    let query = parse_query("/root/pub/book[author]/name/text()").unwrap();
    let mut projector = Projector::new(&query);
    let events = xsq::xml::parse_to_events(feed[0]).unwrap();
    let kept: Vec<_> = events.iter().filter(|e| projector.keep(e)).collect();
    println!(
        "\nprojection for {}: kept {} of {} events ({:.0}% dropped)",
        query,
        kept.len(),
        events.len(),
        projector.selectivity() * 100.0
    );
}
