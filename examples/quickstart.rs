//! Quickstart: evaluate XPath over streaming XML with XSQ.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use xsq::engine::{evaluate, VecSink, XsqEngine};

fn main() {
    // Figure 1 of the paper, lightly reformatted.
    let document = br#"<root>
      <pub>
        <book id="1">
          <price>12.00</price>
          <name>First</name>
          <author>A</author>
          <price type="discount">10.00</price>
        </book>
        <book id="2">
          <price>14.00</price>
          <name>Second</name>
          <author>A</author>
          <author>B</author>
          <price type="discount">12.00</price>
        </book>
        <year>2002</year>
      </pub>
    </root>"#;

    // One-call evaluation: Example 1's query. The authors are buffered
    // until <year>2002 proves the first predicate, then released.
    let query = "/root/pub[year=2002]/book[price<11]/author/text()";
    let results = evaluate(query, document).expect("well-formed document and query");
    println!("{query}");
    println!("  -> {results:?}");
    assert_eq!(results, ["A"]);

    // Closures + multiple predicates, the paper's headline combination.
    let query = "//pub[year>2000]//book[author]//name/text()";
    let results = evaluate(query, document).unwrap();
    println!("{query}");
    println!("  -> {results:?}");
    assert_eq!(results, ["First", "Second"]);

    // Aggregation with running updates (§4.4): compile once, inspect
    // the sink's update trail.
    let query = "//book/price/sum()";
    let compiled = XsqEngine::full().compile_str(query).unwrap();
    let mut sink = VecSink::new();
    let stats = compiled.run_document(document, &mut sink).unwrap();
    println!("{query}");
    println!(
        "  -> final {:?}, running updates {:?}",
        sink.results, sink.updates
    );
    println!(
        "  processed {} events; peak buffered bytes: {}",
        stats.events, stats.memory.peak_bytes
    );

    // XSQ-NC: the deterministic engine for closure-free queries.
    let nc = XsqEngine::no_closure();
    let compiled = nc.compile_str("/root/pub/book/@id").unwrap();
    let mut sink = VecSink::new();
    compiled.run_document(document, &mut sink).unwrap();
    println!("/root/pub/book/@id (XSQ-NC)\n  -> {:?}", sink.results);
}
