//! Closures over recursive data — the hard case (Example 2 / Fig. 11).
//!
//! When the data nests `pub` inside `pub`, a single element can match a
//! closure query along several paths simultaneously, each with its own
//! predicate outcomes. XSQ tracks every path with depth vectors and
//! emits each result exactly once, in document order.
//!
//! ```sh
//! cargo run --release --example recursive_docs
//! ```

use xsq::datagen::xmlgen::{self, XmlGenParams};
use xsq::engine::{evaluate, VecSink, XsqEngine};

fn main() {
    // -- 1. The paper's Figure 2, annotated -------------------------------
    let fig2 = r#"<root><pub>
      <book><name>X</name><author>A</author></book>
      <book><name>Y</name>
        <pub>
          <book><name>Z</name><author>B</author></book>
          <year>1999</year>
        </pub>
      </book>
      <year>2002</year>
    </pub></root>"#;

    let query = "//pub[year=2002]//book[author]//name/text()";
    println!("query: {query}");
    println!("data:  Figure 2 (pub nested inside book inside pub)\n");
    println!("the name Z matches the path three ways (the paper's table):");
    println!("  pub(outer) year=2002 ✓   book(Y)  author ✗   -> rejected");
    println!("  pub(outer) year=2002 ✓   book(Z') author ✓   -> ACCEPTED");
    println!("  pub(inner) year=2002 ✗   book(Z') author ✓   -> rejected");
    let r = evaluate(query, fig2.as_bytes()).unwrap();
    println!("result: {r:?} (Z kept via the one satisfying path; X too)\n");
    assert_eq!(r, ["X", "Z"]);

    // -- 2. Generated deeply recursive data (Fig. 20's workload) ---------
    let doc = xmlgen::generate(
        XmlGenParams {
            nested_levels: 15,
            max_repeats: 20,
            seed: 7,
        },
        1 << 20,
    );
    let stats = xsq::xml::dataset_stats(doc.as_bytes()).unwrap();
    println!(
        "generated {} KB of recursive data: {} elements, max depth {}",
        doc.len() / 1024,
        stats.elements,
        stats.max_depth
    );

    let query = "//pub[year]//book[@id]/title/text()";
    let compiled = XsqEngine::full().compile_str(query).unwrap();
    let mut sink = VecSink::new();
    let run = compiled.run_document(doc.as_bytes(), &mut sink).unwrap();
    println!("query: {query}");
    println!(
        "  {} titles; peak simultaneous configurations: {} (the closure \
         nondeterminism); peak buffered bytes: {} — constant in input \
         size, bounded by element extent (Fig. 20's claim)",
        sink.results.len(),
        run.memory.peak_configs,
        run.memory.peak_bytes,
    );

    // Duplicate-freedom under recursion: count distinct matches two ways.
    let n_direct = sink.results.len();
    let n_counted = evaluate("//pub[year]//book[@id]/title/count()", doc.as_bytes()).unwrap();
    assert_eq!(n_counted, [n_direct.to_string()]);
    println!("  count() agrees: {n_counted:?}");

    // And the DOM oracle sees the same thing.
    let oracle = {
        let tree = xsq::baselines::dom::Document::parse(doc.as_bytes()).unwrap();
        let q = xsq::xpath::parse_query(query).unwrap();
        xsq::baselines::dom::eval_stepwise(&tree, &q)
    };
    assert_eq!(oracle, sink.results);
    println!("  DOM oracle agrees on all {} results", oracle.len());
}
