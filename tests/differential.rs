//! Differential property tests: XSQ against the DOM oracle.
//!
//! Random documents × random queries; the streaming engines must return
//! exactly what the in-memory evaluators return, in the same order:
//!
//! * XSQ-F ≡ DOM (stepwise) ≡ DOM (pathcheck) on *everything*;
//! * XSQ-NC ≡ DOM on closure-free queries;
//! * XMLTK ≡ DOM on predicate-free `text()`/`@attr`/`count()` queries;
//! * the well-formedness PDA accepts every generated document's events.

// Property tests are opt-in (`RUSTFLAGS="--cfg xsq_proptest"`): the proptest
// dependency needs network access, and the default test run is hermetic.
#![cfg(xsq_proptest)]

use proptest::prelude::*;

use xsq::baselines::dom::{eval_pathcheck, eval_stepwise, Document};
use xsq::engine::{VecSink, XsqEngine};
use xsq::xpath::parse_query;

// ---- random document generation ---------------------------------------

/// A small element tree over a tiny alphabet, so tag collisions (the hard
/// cases: predicate child = next step, recursive nesting) are frequent.
#[derive(Debug, Clone)]
enum Tree {
    Element {
        tag: usize,
        attr: Option<(usize, i32)>,
        children: Vec<Tree>,
    },
    Text(i32),
    /// Non-numeric character data (string comparisons, NaN paths).
    Word(usize),
}

/// Small word pool; includes substrings of each other so `contains`
/// has interesting cases.
const WORDS: [&str; 4] = ["x", "xy", "love", "lovely"];

const TAGS: [&str; 4] = ["a", "b", "c", "d"];
const ATTRS: [&str; 2] = ["x", "y"];

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        (-3..4i32).prop_map(Tree::Text),
        (0..WORDS.len()).prop_map(Tree::Word),
        (
            0..TAGS.len(),
            proptest::option::of((0..ATTRS.len(), -3..4i32))
        )
            .prop_map(|(tag, attr)| Tree::Element {
                tag,
                attr,
                children: vec![],
            }),
    ];
    leaf.prop_recursive(4, 24, 4, |inner| {
        (
            0..TAGS.len(),
            proptest::option::of((0..ATTRS.len(), -3..4i32)),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(tag, attr, children)| Tree::Element {
                tag,
                attr,
                children,
            })
    })
}

fn render(tree: &Tree, out: &mut String) {
    match tree {
        Tree::Text(v) => out.push_str(&v.to_string()),
        Tree::Word(w) => out.push_str(WORDS[*w]),
        Tree::Element {
            tag,
            attr,
            children,
        } => {
            out.push('<');
            out.push_str(TAGS[*tag]);
            if let Some((a, v)) = attr {
                out.push_str(&format!(" {}=\"{}\"", ATTRS[*a], v));
            }
            out.push('>');
            for c in children {
                render(c, out);
            }
            out.push_str("</");
            out.push_str(TAGS[*tag]);
            out.push('>');
        }
    }
}

fn doc_strategy() -> impl Strategy<Value = String> {
    (0..TAGS.len(), prop::collection::vec(tree_strategy(), 0..5)).prop_map(|(tag, children)| {
        let mut s = String::new();
        render(
            &Tree::Element {
                tag,
                attr: None,
                children,
            },
            &mut s,
        );
        s
    })
}

// ---- random query generation -------------------------------------------

fn pred_strategy() -> impl Strategy<Value = String> {
    let op = prop_oneof![
        Just("="),
        Just("!="),
        Just("<"),
        Just("<="),
        Just(">"),
        Just(">="),
    ];
    prop_oneof![
        // String-valued comparisons and substring tests.
        (
            0..TAGS.len(),
            prop_oneof![Just("="), Just("!="), Just("%")],
            0..WORDS.len()
        )
            .prop_map(|(t, op, w)| format!("[{}{}\"{}\"]", TAGS[t], op, WORDS[w])),
        (prop_oneof![Just("="), Just("%")], 0..WORDS.len())
            .prop_map(|(op, w)| format!("[text(){}\"{}\"]", op, WORDS[w])),
        (0..ATTRS.len()).prop_map(|a| format!("[@{}]", ATTRS[a])),
        (0..ATTRS.len(), op.clone(), -2..3i32)
            .prop_map(|(a, op, v)| format!("[@{}{}{}]", ATTRS[a], op, v)),
        (op.clone(), -2..3i32).prop_map(|(op, v)| format!("[text(){}{}]", op, v)),
        (0..TAGS.len()).prop_map(|t| format!("[{}]", TAGS[t])),
        (0..TAGS.len(), 0..ATTRS.len(), op.clone(), -2..3i32)
            .prop_map(|(t, a, op, v)| format!("[{}@{}{}{}]", TAGS[t], ATTRS[a], op, v)),
        (0..TAGS.len(), op, -2..3i32).prop_map(|(t, op, v)| format!("[{}{}{}]", TAGS[t], op, v)),
    ]
}

fn step_strategy() -> impl Strategy<Value = String> {
    (
        prop::bool::ANY,
        prop_oneof![
            (0..TAGS.len()).prop_map(|t| TAGS[t].to_string()),
            Just("*".to_string())
        ],
        proptest::option::of(pred_strategy()),
    )
        .prop_map(|(closure, test, pred)| {
            format!(
                "{}{}{}",
                if closure { "//" } else { "/" },
                test,
                pred.unwrap_or_default()
            )
        })
}

fn query_strategy() -> impl Strategy<Value = String> {
    (
        prop::collection::vec(step_strategy(), 1..4),
        prop_oneof![
            Just("".to_string()),
            Just("/text()".to_string()),
            (0..ATTRS.len()).prop_map(|a| format!("/@{}", ATTRS[a])),
            Just("/count()".to_string()),
            Just("/sum()".to_string()),
        ],
    )
        .prop_map(|(steps, output)| format!("{}{}", steps.concat(), output))
}

/// Closure-free queries (the XSQ-NC fragment): child axes only.
fn closure_free_query_strategy() -> impl Strategy<Value = String> {
    let step = (
        prop_oneof![
            (0..TAGS.len()).prop_map(|t| TAGS[t].to_string()),
            Just("*".to_string())
        ],
        proptest::option::of(pred_strategy()),
    )
        .prop_map(|(test, pred)| format!("/{}{}", test, pred.unwrap_or_default()));
    (
        prop::collection::vec(step, 1..4),
        prop_oneof![
            Just("".to_string()),
            Just("/text()".to_string()),
            (0..ATTRS.len()).prop_map(|a| format!("/@{}", ATTRS[a])),
            Just("/count()".to_string()),
            Just("/sum()".to_string()),
        ],
    )
        .prop_map(|(steps, output)| format!("{}{}", steps.concat(), output))
}

/// Predicate-free path queries with scalar outputs (the XMLTK fragment).
fn path_query_strategy() -> impl Strategy<Value = String> {
    let step = (
        prop::bool::ANY,
        prop_oneof![
            (0..TAGS.len()).prop_map(|t| TAGS[t].to_string()),
            Just("*".to_string())
        ],
    )
        .prop_map(|(closure, test)| format!("{}{}", if closure { "//" } else { "/" }, test));
    (
        prop::collection::vec(step, 1..4),
        prop_oneof![
            Just("/text()".to_string()),
            (0..ATTRS.len()).prop_map(|a| format!("/@{}", ATTRS[a])),
            Just("/count()".to_string()),
        ],
    )
        .prop_map(|(steps, output)| format!("{}{}", steps.concat(), output))
}

fn xsq_run(engine: XsqEngine, query: &str, doc: &[u8]) -> Option<Vec<String>> {
    let compiled = engine.compile_str(query).ok()?;
    let mut sink = VecSink::new();
    compiled
        .run_document(doc, &mut sink)
        .expect("well-formed doc");
    Some(sink.results)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 256,
        ..ProptestConfig::default()
    })]

    #[test]
    fn xsq_f_matches_the_dom_oracle(doc in doc_strategy(), query in query_strategy()) {
        let parsed = parse_query(&query).expect("generated queries parse");
        let tree = Document::parse(doc.as_bytes()).expect("generated docs are well-formed");
        let expected = eval_stepwise(&tree, &parsed);
        // The two DOM strategies must agree with each other…
        prop_assert_eq!(&eval_pathcheck(&tree, &parsed), &expected,
            "DOM strategies disagree on {} over {}", query, doc);
        // …and the streaming engine with both.
        let got = xsq_run(XsqEngine::full(), &query, doc.as_bytes()).expect("XSQ-F supports all");
        prop_assert_eq!(&got, &expected, "XSQ-F disagrees on {} over {}", query, doc);
    }

    #[test]
    fn xsq_nc_matches_on_closure_free_queries(
        doc in doc_strategy(),
        query in closure_free_query_strategy(),
    ) {
        let parsed = parse_query(&query).expect("generated queries parse");
        debug_assert!(!parsed.has_closure());
        let tree = Document::parse(doc.as_bytes()).expect("well-formed");
        let expected = eval_stepwise(&tree, &parsed);
        let got = xsq_run(XsqEngine::no_closure(), &query, doc.as_bytes()).expect("closure-free");
        prop_assert_eq!(&got, &expected, "XSQ-NC disagrees on {} over {}", query, doc);
    }

    #[test]
    fn xmltk_matches_on_predicate_free_queries(
        doc in doc_strategy(),
        query in path_query_strategy(),
    ) {
        // XMLTK emits whole elements at their *end* tag (completion
        // order), so the strategy restricts outputs to scalars.
        let parsed = parse_query(&query).expect("generated queries parse");
        let tree = Document::parse(doc.as_bytes()).expect("well-formed");
        let expected = eval_stepwise(&tree, &parsed);
        use xsq::engine::XPathEngine as _;
        let report = xsq::baselines::XmltkLike.run(&query, doc.as_bytes());
        let got = report.expect("path query supported").results;
        prop_assert_eq!(&got, &expected, "XMLTK disagrees on {} over {}", query, doc);
    }

    #[test]
    fn naive_flags_engine_matches_on_text_queries(
        doc in doc_strategy(),
        query in prop::collection::vec(step_strategy(), 1..4)
            .prop_map(|steps| format!("{}/text()", steps.concat())),
    ) {
        use xsq::engine::XPathEngine as _;
        let naive = xsq::baselines::NaiveFlags
            .run(&query, doc.as_bytes())
            .expect("text queries supported")
            .results;
        let expected = xsq_run(XsqEngine::full(), &query, doc.as_bytes()).expect("supported");
        prop_assert_eq!(&naive, &expected, "naive disagrees on {} over {}", query, doc);
    }

    #[test]
    fn projection_is_lossless(doc in doc_strategy(), query in query_strategy()) {
        // Running the query on the projected stream must be identical to
        // running it on the full stream — for every query class, with
        // the kept set staying a well-formed event sequence.
        let parsed = parse_query(&query).expect("generated queries parse");
        let events = xsq::xml::parse_to_events(doc.as_bytes()).expect("well-formed");
        let projected = xsq::engine::projector::project_events(&parsed, &events);
        prop_assert!(xsq::xml::WellFormednessPda::accepts(&projected),
            "projection broke well-formedness on {} over {}", query, doc);
        let compiled = XsqEngine::full().compile(&parsed).expect("compiles");
        let mut full = VecSink::new();
        compiled.run_events(&events, &mut full);
        let mut proj = VecSink::new();
        compiled.run_events(&projected, &mut proj);
        prop_assert_eq!(full.results, proj.results,
            "projection lost results on {} over {}", query, doc);
    }

    #[test]
    fn multi_query_runs_equal_single_runs(
        doc in doc_strategy(),
        queries in prop::collection::vec(query_strategy(), 1..5),
    ) {
        let refs: Vec<&str> = queries.iter().map(String::as_str).collect();
        let set = xsq::engine::QuerySet::compile(XsqEngine::full(), &refs)
            .expect("generated queries compile");
        let multi = set.run_document(doc.as_bytes()).expect("well-formed");
        for (i, q) in refs.iter().enumerate() {
            let single = xsq_run(XsqEngine::full(), q, doc.as_bytes()).expect("supported");
            prop_assert_eq!(&multi[i], &single, "multi vs single on {} over {}", q, doc);
        }
    }

    #[test]
    fn emission_is_prefix_stable(
        doc in doc_strategy(),
        query in query_strategy(),
        cut_seed in any::<u32>(),
    ) {
        // Streaming monotonicity: whatever has been emitted after any
        // event prefix must be a prefix of the final result list — the
        // engine never emits something it would later retract or
        // reorder.
        let parsed = parse_query(&query).expect("generated queries parse");
        prop_assume!(!parsed.is_aggregation()); // running updates differ by design
        let compiled = XsqEngine::full().compile(&parsed).expect("compiles");
        let events = xsq::xml::parse_to_events(doc.as_bytes()).expect("well-formed");
        let mut full = VecSink::new();
        compiled.run_events(&events, &mut full);
        let cut = (cut_seed as usize) % (events.len() + 1);
        let mut partial = VecSink::new();
        let mut runner = compiled.runner();
        for e in &events[..cut] {
            runner.feed(e, &mut partial);
        }
        prop_assert!(
            partial.results.len() <= full.results.len()
                && partial.results[..] == full.results[..partial.results.len()],
            "prefix after {} events {:?} is not a prefix of {:?} ({} over {})",
            cut, partial.results, full.results, query, doc
        );
    }

    #[test]
    fn pruned_hpdt_results_equal_unpruned(doc in doc_strategy(), query in query_strategy()) {
        // Dead-state pruning must be invisible: the raw builder output
        // (which `XsqEngine::compile` never exposes anymore) and its
        // pruned twin produce identical result streams on every
        // document. The generated predicate pool includes relational
        // comparisons against non-numeric words, so genuinely prunable
        // automata appear regularly.
        let parsed = parse_query(&query).expect("generated queries parse");
        let original = xsq::engine::build_hpdt(&parsed).expect("builds");
        let (pruned, stats) = xsq::engine::prune(&original);
        prop_assert!(stats.states_after <= stats.states_before);
        let events = xsq::xml::parse_to_events(doc.as_bytes()).expect("well-formed");
        let mut before = VecSink::new();
        let mut runner = xsq::engine::Runner::new(&original, true);
        for e in &events {
            runner.feed(e, &mut before);
        }
        runner.finish(&mut before);
        let mut after = VecSink::new();
        let mut runner = xsq::engine::Runner::new(&pruned, true);
        for e in &events {
            runner.feed(e, &mut after);
        }
        runner.finish(&mut after);
        prop_assert_eq!(&before.results, &after.results,
            "pruning changed results on {} over {}", query, doc);
    }

    #[test]
    fn parser_writer_roundtrip_and_pda(doc in doc_strategy()) {
        let events = xsq::xml::parse_to_events(doc.as_bytes()).expect("well-formed");
        prop_assert!(xsq::xml::WellFormednessPda::accepts(&events));
        let rewritten = xsq::xml::writer::events_to_string(&events);
        let events2 = xsq::xml::parse_to_events(rewritten.as_bytes()).expect("round-trip");
        prop_assert_eq!(events, events2);
    }

    #[test]
    fn buffers_drain_by_end_of_document(doc in doc_strategy(), query in query_strategy()) {
        let compiled = XsqEngine::full().compile_str(&query).expect("parses");
        let events = xsq::xml::parse_to_events(doc.as_bytes()).expect("well-formed");
        let mut runner = compiled.runner();
        let mut sink = VecSink::new();
        for e in &events {
            runner.feed(e, &mut sink);
        }
        // The paper's invariant: every buffered item resolves by the end
        // event of the element named in the first location step — a
        // fortiori by end of document.
        prop_assert_eq!(runner.buffered_entries(), 0,
            "buffers leak on {} over {}", query, doc);
        prop_assert_eq!(runner.config_count(), 1, "one start configuration must remain");
    }
}
