//! Parser-reuse differential tests: a long-lived parser rearmed across
//! documents (`reset_with` on the pull side, `reset_push` on the push
//! side) must be indistinguishable from a fresh parser per document —
//! identical event streams at every chunk size, and identical query
//! results when the reused push parser feeds the multi-query index the
//! way a server session does. Same corpus style as
//! `tests/shard_equivalence.rs`.

use xsq::xml::{parse_to_events, ParsePoll, PushParser, SaxEvent, StreamParser};
use xsq::{run_sequential, QuerySet, VecQuerySink, XsqEngine};

const FIG1: &str = r#"<root><pub><book id="1"><price>12.00</price>
<name>First</name><author>A</author></book><book id="2">
<price>14.00</price><name>Second</name><author>A</author>
<author>B</author></book><year>2002</year></pub></root>"#;

const FIG2: &str = r#"<root><pub><book><name>X</name><author>A</author>
</book><book><name>Y</name><pub><book><name>Z</name><author>B</author>
</book><year>1999</year></pub></book><year>2002</year></pub></root>"#;

/// The paper's example-query shapes over the shared vocabulary.
const QUERIES: &[&str] = &[
    "//pub[year=2002]//book[author]//name/text()",
    "//book[@id]/name/text()",
    "//book/@id",
    "//name/text()",
    "//price/sum()",
    "//book/count()",
];

/// Figure documents, conformance-hazard variants (CRLF, wrapped
/// attributes, CDATA), and generated recursive documents.
fn corpus() -> Vec<Vec<u8>> {
    let mut docs: Vec<Vec<u8>> = vec![
        FIG1.as_bytes().to_vec(),
        FIG2.as_bytes().to_vec(),
        FIG1.replace('\n', "\r\n").into_bytes(),
        FIG2.replace("id=\"1\"", "id=\"1\r\n\"").into_bytes(),
        b"<root><pub><book id=\"9\"><name><![CDATA[x]]y]]></name>
<price>7.5</price></book><year>2002</year></pub></root>"
            .to_vec(),
    ];
    for i in 0..6 {
        let params = xsq::datagen::xmlgen::XmlGenParams {
            nested_levels: 3 + (i as u32 % 4),
            max_repeats: 4 + (i as u32 % 5),
            seed: 7 + i as u64,
        };
        docs.push(xsq::datagen::xmlgen::generate(params, 2_500 + 1_000 * i).into_bytes());
    }
    docs
}

/// Drain everything the push parser currently has.
fn drain(parser: &mut PushParser, out: &mut Vec<SaxEvent>) {
    while let ParsePoll::Event(ev) = parser.poll_raw().expect("push parse failed") {
        out.push(ev.to_owned());
    }
}

#[test]
fn reset_with_reused_pull_parser_matches_fresh_parsers() {
    let docs = corpus();
    // One parser for the whole corpus: rearm with each document's reader
    // and compare against a from-scratch parse of the same bytes.
    let mut reused = StreamParser::new(&b""[..]);
    for (di, doc) in docs.iter().enumerate() {
        reused.reset_with(&doc[..]);
        let mut got = Vec::new();
        while let Some(ev) = reused.next_event().expect("reused parse failed") {
            got.push(ev);
        }
        let fresh = parse_to_events(doc).expect("fresh parse failed");
        assert_eq!(got, fresh, "reused parser diverged on doc {di}");
    }
}

#[test]
fn reset_push_reused_push_parser_matches_one_shot_at_every_chunk_size() {
    let docs = corpus();
    for chunk in [1usize, 7, 64, 4096] {
        // One push parser for the whole corpus at this chunk size,
        // reset between documents exactly like a server session.
        let mut parser = StreamParser::push_mode();
        for (di, doc) in docs.iter().enumerate() {
            let mut got = Vec::new();
            for piece in doc.chunks(chunk) {
                parser.push(piece);
                drain(&mut parser, &mut got);
            }
            parser.finish();
            drain(&mut parser, &mut got);
            let fresh = parse_to_events(doc).expect("fresh parse failed");
            assert_eq!(got, fresh, "push parser diverged on doc {di} chunk {chunk}");
            parser.reset_push();
        }
    }
}

#[test]
fn push_fed_query_index_matches_sequential_driver() {
    let docs = corpus();
    let set = QuerySet::compile(XsqEngine::full(), QUERIES).expect("queries compile");
    let expected = run_sequential(&set, &docs).expect("sequential run");
    assert!(expected.result_count() > 0, "corpus must produce results");

    for chunk in [1usize, 13, 1024] {
        // Session shape: one index, one push parser, documents back to
        // back; per-document output must match the one-shot driver.
        let mut index = set.index();
        let mut parser = StreamParser::push_mode();
        for (di, doc) in docs.iter().enumerate() {
            let mut sink = VecQuerySink::new();
            for piece in doc.chunks(chunk) {
                parser.push(piece);
                while let ParsePoll::Event(ev) = parser.poll_raw().expect("push parse failed") {
                    index.feed_raw(&ev, &mut sink);
                }
            }
            parser.finish();
            while let ParsePoll::Event(ev) = parser.poll_raw().expect("push parse failed") {
                index.feed_raw(&ev, &mut sink);
            }
            index.finish(&mut sink);
            parser.reset_push();
            assert_eq!(
                sink.results, expected.per_doc[di].results,
                "results diverged on doc {di} chunk {chunk}"
            );
            assert_eq!(
                sink.updates.len(),
                expected.per_doc[di].updates.len(),
                "update count diverged on doc {di} chunk {chunk}"
            );
        }
    }
}
