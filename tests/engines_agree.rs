//! Cross-engine agreement on the experiment workloads themselves: every
//! study participant that supports a query must return identical results
//! on the generated datasets (Joost excepted where forward-only
//! evaluation legitimately diverges — checked separately).

use xsq::baselines::{all_engines, JoostLike, SaxonLike};
use xsq::datagen;
use xsq::engine::XPathEngine;

fn agree(query: &str, doc: &[u8], context: &str) {
    let mut reference: Option<(String, Vec<String>)> = None;
    for engine in all_engines() {
        // Joost's forward-only predicate semantics differ by design.
        if engine.name() == "Joost" {
            continue;
        }
        match engine.run(query, doc) {
            Err(_) => continue,
            Ok(r) => match &reference {
                None => reference = Some((engine.name().to_string(), r.results)),
                Some((ref_name, expected)) => {
                    assert_eq!(
                        &r.results,
                        expected,
                        "{} vs {} on {query} ({context})",
                        engine.name(),
                        ref_name
                    );
                }
            },
        }
    }
    assert!(reference.is_some(), "no engine supported {query}");
}

#[test]
fn shake_queries_agree() {
    let doc = datagen::shake::generate(1, 60_000);
    for q in [
        "/PLAYS/PLAY/ACT/SCENE/SPEECH[LINE%love]/SPEAKER/text()",
        "/PLAYS/PLAY/ACT/SCENE/SPEECH/SPEAKER/text()",
        "//ACT//SPEAKER/text()",
        "//SPEECH/count()",
    ] {
        agree(q, doc.as_bytes(), "SHAKE");
    }
}

#[test]
fn dblp_queries_agree() {
    let doc = datagen::dblp::generate(2, 60_000);
    for q in [
        "/dblp/article/title/text()",
        "/dblp/inproceedings[author]/title/text()",
        "/dblp/article/@key",
        "//article/year/sum()",
    ] {
        agree(q, doc.as_bytes(), "DBLP");
    }
}

#[test]
fn nasa_and_psd_queries_agree() {
    let nasa = datagen::nasa::generate(3, 60_000);
    agree(
        "/datasets/dataset/reference/source/other/name/text()",
        nasa.as_bytes(),
        "NASA",
    );
    let psd = datagen::psd::generate(4, 60_000);
    agree(
        "/ProteinDatabase/ProteinEntry/reference/refinfo/authors/author/text()",
        psd.as_bytes(),
        "PSD",
    );
}

#[test]
fn recursive_closure_workload_agrees() {
    let doc = datagen::xmlgen::generate(
        datagen::xmlgen::XmlGenParams {
            nested_levels: 8,
            max_repeats: 6,
            seed: 5,
        },
        60_000,
    );
    for q in [
        "//pub[year]//book[@id]/title/text()",
        "//pub//book/title/text()",
        "//book[@id]/count()",
        "//pub[year>2000]//book/title/text()",
    ] {
        agree(q, doc.as_bytes(), "recursive");
    }
}

#[test]
fn ordering_and_color_workloads_agree() {
    let ordering = datagen::toxgene::ordering_dataset(40_000, 50);
    for q in [
        "/doc/a[prior=0]",
        "/doc/a[posterior=0]",
        "/doc/a[@id=0]",
        "/doc/a[@id=3]/prior/text()",
    ] {
        agree(q, ordering.as_bytes(), "ordering");
    }
    let colors = datagen::toxgene::color_dataset(6, 40_000);
    for q in ["/a/red", "/a/green/text()", "/a/blue/count()"] {
        agree(q, colors.as_bytes(), "colors");
    }
}

#[test]
fn xmark_workload_agrees() {
    // The XMark-like auction data: recursive descriptions, numeric
    // predicates, existence predicates, aggregation.
    for seed in [1, 9] {
        let doc = datagen::xmark::generate(seed, 80_000);
        for q in datagen::xmark::QUERIES {
            agree(q, doc.as_bytes(), "XMark");
        }
    }
}

#[test]
fn joost_agrees_exactly_when_predicates_precede_values() {
    // On the ordering dataset, prior comes before the a-group's content…
    let doc = datagen::toxgene::ordering_dataset(20_000, 20);
    let q = "/doc/a[prior=1]/posterior/text()";
    let joost = JoostLike.run(q, doc.as_bytes()).unwrap().results;
    let saxon = SaxonLike.run(q, doc.as_bytes()).unwrap().results;
    assert_eq!(joost, saxon, "prior-gated results are forward-decidable");
    // …but a posterior-gated query silently loses results in Joost.
    let q = "/doc/a[posterior=1]/prior/text()";
    let joost = JoostLike.run(q, doc.as_bytes()).unwrap().results;
    let saxon = SaxonLike.run(q, doc.as_bytes()).unwrap().results;
    assert!(joost.is_empty());
    assert!(!saxon.is_empty());
}
