//! Differential coverage for the zero-copy event path.
//!
//! The engine exposes two ways to drive a document: the owned
//! `SaxEvent` API (`parse_to_events` + `feed`) and the borrowed
//! `RawEvent` API (`next_raw` + `feed_raw`). Both must produce
//! bit-identical results on identical input — same values, same
//! document order — for the paper-walkthrough query and for the
//! multi-query sets exercised by `qindex_grouped`.

use xsq::datagen::{dblp, shake, xmark, xmlgen, xmlgen::XmlGenParams};
use xsq::engine::VecSink;
use xsq::xml::StreamParser;
use xsq::{QueryIndex, VecQuerySink, XsqEngine};

/// Figure 1's document (as in the paper-walkthrough trace test).
const FIG1: &str = r#"<root><pub>
    <book id="1"><price>12.00</price><name>First</name><author>A</author>
      <price type="discount">10.00</price></book>
    <book id="2"><price>14.00</price><name>Second</name><author>A</author>
      <author>B</author><price type="discount">12.00</price></book>
    <year>2002</year>
</pub></root>"#;

/// Drive a single query through the owned-event path.
fn owned_path(query: &str, doc: &[u8]) -> Vec<String> {
    let compiled = XsqEngine::full().compile_str(query).expect("compiles");
    let mut runner = compiled.runner();
    let mut sink = VecSink::new();
    for ev in xsq::xml::parse_to_events(doc).expect("parses") {
        runner.feed(&ev, &mut sink);
    }
    runner.finish(&mut sink);
    sink.results
}

/// Drive the same query through the borrowed zero-copy path.
fn raw_path(query: &str, doc: &[u8]) -> Vec<String> {
    let compiled = XsqEngine::full().compile_str(query).expect("compiles");
    let mut runner = compiled.runner();
    let mut sink = VecSink::new();
    let mut parser = StreamParser::new(doc);
    while let Some(ev) = parser.next_raw().expect("parses") {
        runner.feed_raw(&ev, &mut sink);
    }
    runner.finish(&mut sink);
    sink.results
}

fn check_queries(queries: &[&str], doc: &[u8], label: &str) {
    for q in queries {
        let owned = owned_path(q, doc);
        let raw = raw_path(q, doc);
        assert_eq!(owned, raw, "[{label}] owned vs raw path on {q}");
    }
}

#[test]
fn paper_walkthrough_query_agrees_across_paths() {
    let query = "//pub[year>2000]//book[author]//name/text()";
    let owned = owned_path(query, FIG1.as_bytes());
    let raw = raw_path(query, FIG1.as_bytes());
    assert_eq!(owned, ["First", "Second"]);
    assert_eq!(owned, raw);
}

#[test]
fn qindex_grouped_queries_agree_on_recursive_xmlgen_data() {
    let queries = [
        "//pub[year]//book[@id]/title/text()",
        "//pub/book/title/text()",
        "//pub/book/@id",
        "//book/price/text()",
        "//book/count()",
        "/site/pub/year/text()",
        "//price/sum()",
    ];
    for seed in [1u64, 7, 42] {
        let doc = xmlgen::generate(
            XmlGenParams {
                nested_levels: 6,
                max_repeats: 4,
                seed,
            },
            20_000,
        );
        check_queries(&queries, doc.as_bytes(), &format!("xmlgen seed {seed}"));
    }
}

#[test]
fn qindex_grouped_queries_agree_on_xmark_data() {
    let queries = [
        "/site/regions/region/item/name/text()",
        "/site/regions/region/item/quantity/text()",
        "/site/people/person/name/text()",
        "/site/people/person/@id",
        "//item[quantity]/name/text()",
        "//bidder/increase/text()",
        "//increase/sum()",
        "/site/open_auctions/open_auction/@id",
    ];
    for seed in [3u64, 11] {
        let doc = xmark::generate(seed, 30_000);
        check_queries(&queries, doc.as_bytes(), &format!("xmark seed {seed}"));
    }
}

#[test]
fn entity_heavy_documents_agree_across_paths() {
    // dblp and shake text carries entity references — the decode-into
    // fast path must produce exactly what the owned path produced.
    let queries = ["//title/text()", "//author/text()", "//line/text()"];
    let dblp_doc = dblp::generate(2003, 20_000);
    let shake_doc = shake::generate(2003, 20_000);
    check_queries(&queries, dblp_doc.as_bytes(), "dblp");
    check_queries(&queries, shake_doc.as_bytes(), "shake");
}

/// The multi-query index must also agree between its owned and raw feeds.
#[test]
fn query_index_feed_and_feed_raw_agree() {
    let queries = [
        "//pub[year]//book[@id]/title/text()",
        "//pub/book/title/text()",
        "//pub/book/@id",
        "/site/pub/year/text()",
    ];
    let doc = xmlgen::generate(
        XmlGenParams {
            nested_levels: 6,
            max_repeats: 5,
            seed: 13,
        },
        25_000,
    );

    let mut owned_index = QueryIndex::new(XsqEngine::full());
    let owned_ids = owned_index.subscribe_group(&queries).expect("compiles");
    let mut owned_sink = VecQuerySink::new();
    for ev in xsq::xml::parse_to_events(doc.as_bytes()).expect("parses") {
        owned_index.feed(&ev, &mut owned_sink);
    }
    owned_index.finish(&mut owned_sink);

    let mut raw_index = QueryIndex::new(XsqEngine::full());
    let raw_ids = raw_index.subscribe_group(&queries).expect("compiles");
    let mut raw_sink = VecQuerySink::new();
    let mut parser = StreamParser::new(doc.as_bytes());
    while let Some(ev) = parser.next_raw().expect("parses") {
        raw_index.feed_raw(&ev, &mut raw_sink);
    }
    raw_index.finish(&mut raw_sink);

    for (i, q) in queries.iter().enumerate() {
        assert_eq!(
            owned_sink.of(owned_ids[i]),
            raw_sink.of(raw_ids[i]),
            "index owned vs raw feed on {q}"
        );
    }
}
