//! End-to-end schema-aware optimization (the paper's §5 future-work
//! item): DTD-driven closure elimination must preserve results on
//! schema-valid documents, and unsatisfiable queries must be provable.

use std::collections::BTreeSet;

use xsq::engine::schema::{analyze, optimize};
use xsq::engine::{evaluate, XsqEngine};
use xsq::xml::dtd::Dtd;
use xsq::xpath::parse_query;

fn dblp_dtd() -> Dtd {
    Dtd::parse(
        r#"
        <!ELEMENT dblp (article | inproceedings)*>
        <!ELEMENT article (author*, title, year, pages)>
        <!ELEMENT inproceedings (author*, title, year, pages, booktitle)>
        <!ELEMENT author (#PCDATA)>
        <!ELEMENT title (#PCDATA)>
        <!ELEMENT year (#PCDATA)>
        <!ELEMENT pages (#PCDATA)>
        <!ELEMENT booktitle (#PCDATA)>
    "#,
    )
    .unwrap()
}

#[test]
fn rewritten_queries_agree_on_generated_data() {
    let doc = xsq::datagen::dblp::generate(11, 80_000);
    let dtd = dblp_dtd();
    for q in [
        "//dblp//article//title/text()",
        "//article//author/text()",
        "//inproceedings//booktitle/text()",
        "//article//year/sum()",
        "//dblp//inproceedings[author]//title/text()",
    ] {
        let parsed = parse_query(q).unwrap();
        let (optimized, analysis) = optimize(&parsed, &dtd);
        assert!(analysis.satisfiable, "{q}");
        assert!(
            !analysis.removable_closures.is_empty(),
            "{q} should allow at least one rewrite"
        );
        let before = evaluate(q, doc.as_bytes()).unwrap();
        let after = evaluate(&optimized.to_string(), doc.as_bytes()).unwrap();
        assert_eq!(before, after, "{q} -> {optimized}");
    }
}

#[test]
fn fully_rewritten_queries_unlock_xsq_nc() {
    let dtd = dblp_dtd();
    let parsed = parse_query("//dblp//article//title/text()").unwrap();
    let (optimized, _) = optimize(&parsed, &dtd);
    assert!(!optimized.has_closure());
    // XSQ-NC rejects the original and accepts the rewritten form.
    assert!(XsqEngine::no_closure().compile(&parsed).is_err());
    assert!(XsqEngine::no_closure().compile(&optimized).is_ok());
}

#[test]
fn unsatisfiable_queries_are_proven_empty() {
    let dtd = dblp_dtd();
    for q in [
        "/dblp/article/booktitle/text()", // booktitle not under article
        "//booktitle//author/text()",     // nothing under booktitle
        "/article/title/text()",          // article is never the root
        "//nosuchtag",
    ] {
        let parsed = parse_query(q).unwrap();
        let a = analyze(&parsed, &dtd, &BTreeSet::new());
        assert!(!a.satisfiable, "{q} should be unsatisfiable");
        // And indeed no result exists on conforming data.
        let doc = xsq::datagen::dblp::generate(3, 40_000);
        assert!(evaluate(q, doc.as_bytes()).unwrap().is_empty());
    }
}

#[test]
fn recursive_schema_blocks_unsound_rewrites() {
    // Fig. 2's recursive shape: pub under book under pub. Closure
    // elimination must NOT fire for tags reachable at depth ≥ 2.
    let dtd = Dtd::parse(
        r#"
        <!ELEMENT root (pub*)>
        <!ELEMENT pub (year?, book*, pub*)>
        <!ELEMENT book (name, author*, pub*)>
        <!ELEMENT year (#PCDATA)>
        <!ELEMENT name (#PCDATA)>
        <!ELEMENT author (#PCDATA)>
    "#,
    )
    .unwrap();
    assert!(dtd.is_recursive());
    let parsed = parse_query("//pub[year=2002]//book[author]//name/text()").unwrap();
    let (optimized, a) = optimize(&parsed, &dtd);
    assert!(a.satisfiable);
    // name occurs only as a direct child of book and book's descendants
    // include book again via pub — //name under //book can match deeper.
    assert!(
        a.removable_closures.is_empty(),
        "{:?}",
        a.removable_closures
    );
    assert_eq!(optimized.to_string(), parsed.to_string());

    // Sanity on real recursive data: the unchanged query still works.
    let doc = "<root><pub><year>2002</year><book><name>A</name><author>x</author>\
               <pub><book><name>B</name><author>y</author></pub></book>\
               </pub></root>";
    // (Deliberately malformed nesting above would fail the parser; use a
    // well-formed variant.)
    let doc = doc.replace("</pub></book>", "</book></pub>");
    let r = evaluate(&parsed.to_string(), doc.as_bytes());
    assert!(r.is_err() || !r.unwrap().is_empty());
}

#[test]
fn schema_extraction_from_doctype_round_trips() {
    let doc = br#"<!DOCTYPE dblp [
        <!ELEMENT dblp (article*)>
        <!ELEMENT article (title)>
        <!ELEMENT title (#PCDATA)>
    ]><dblp><article><title>T</title></article></dblp>"#;
    let dtd = xsq::xml::dtd::extract_from_document(doc).unwrap();
    let parsed = parse_query("//dblp//article//title/text()").unwrap();
    let (optimized, _) = optimize(&parsed, &dtd);
    assert_eq!(optimized.to_string(), "/dblp/article/title/text()");
    assert_eq!(
        evaluate(&optimized.to_string(), doc).unwrap(),
        evaluate("//title/text()", doc).unwrap()
    );
}
