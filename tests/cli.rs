//! End-to-end tests of the `xsq` command-line binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn xsq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xsq"))
}

fn run_with_stdin(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = xsq()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    // The binary may exit before reading stdin (e.g. a bad query fails at
    // compile time); a broken pipe here is fine.
    let _ = child.stdin.as_mut().unwrap().write_all(stdin.as_bytes());
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8(out.stdout).unwrap(),
        String::from_utf8(out.stderr).unwrap(),
        out.status.success(),
    )
}

const DOC: &str =
    "<pub><book id=\"1\"><name>N</name><author>A</author></book><year>2002</year></pub>";

#[test]
fn evaluates_query_over_stdin() {
    let (stdout, _, ok) = run_with_stdin(&["//pub[year=2002]//name/text()"], DOC);
    assert!(ok);
    assert_eq!(stdout.trim(), "N");
}

#[test]
fn engine_selection() {
    for engine in ["xsq-f", "xsq-nc", "saxon", "galax", "joost"] {
        let (stdout, stderr, ok) = run_with_stdin(&["--engine", engine, "/pub/book/@id"], DOC);
        assert!(ok, "{engine} failed: {stderr}");
        assert_eq!(stdout.trim(), "1", "{engine}");
    }
}

#[test]
fn xmltk_engine_runs_plain_paths() {
    let (stdout, _, ok) = run_with_stdin(&["--engine", "xmltk", "/pub/book/name/text()"], DOC);
    assert!(ok);
    assert_eq!(stdout.trim(), "N");
}

#[test]
fn stats_go_to_stderr() {
    let (stdout, stderr, ok) = run_with_stdin(&["--stats", "//name/text()"], DOC);
    assert!(ok);
    assert_eq!(stdout.trim(), "N");
    assert!(stderr.contains("results"), "stderr: {stderr}");
    assert!(stderr.contains("peak_buffered_bytes"));
}

#[test]
fn quiet_suppresses_results() {
    let (stdout, _, ok) = run_with_stdin(&["--quiet", "--stats", "//name/text()"], DOC);
    assert!(ok);
    assert!(stdout.is_empty());
}

#[test]
fn running_aggregates_stream() {
    let (stdout, _, ok) = run_with_stdin(&["--running", "//book/count()"], DOC);
    assert!(ok);
    assert!(stdout.contains("# running: 1"));
    assert!(stdout.trim_end().ends_with('1'));
}

#[test]
fn dump_and_dot_print_the_automaton() {
    let (stdout, _, ok) = run_with_stdin(&["--dump", "/a[b]/c/text()"], "");
    assert!(ok);
    assert!(stdout.contains("HPDT for /a[b]/c/text()"));
    let (stdout, _, ok) = run_with_stdin(&["--dot", "/a[b]/c/text()"], "");
    assert!(ok);
    assert!(stdout.starts_with("digraph hpdt {"));
}

#[test]
fn schema_optimize_rewrites_and_skips() {
    let doc = "<!DOCTYPE r [ <!ELEMENT r (a*)> <!ELEMENT a (b*)> <!ELEMENT b (#PCDATA)> ]>\
               <r><a><b>1</b></a></r>";
    let (stdout, stderr, ok) = run_with_stdin(&["--schema-optimize", "//a//b/text()"], doc);
    assert!(ok);
    assert_eq!(stdout.trim(), "1");
    assert!(
        stderr.contains("rewrote to //a/b/text()"),
        "stderr: {stderr}"
    );
    let (stdout, stderr, ok) = run_with_stdin(&["--schema-optimize", "//zzz/text()"], doc);
    assert!(ok);
    assert!(stdout.is_empty());
    assert!(stderr.contains("never match"));
}

#[test]
fn json_output_escapes_values() {
    let doc = r#"<a><b>say "hi"</b></a>"#;
    let (stdout, _, ok) = run_with_stdin(&["--json", "//b/text()"], doc);
    assert!(ok);
    assert_eq!(stdout.trim(), r#"{"result":"say \"hi\""}"#);
    let (stdout, _, ok) = run_with_stdin(&["--json", "--running", "//b/count()"], doc);
    assert!(ok);
    assert!(stdout.contains(r#"{"running":1}"#));
}

#[test]
fn bad_query_fails_with_nonzero_exit() {
    let (_, stderr, ok) = run_with_stdin(&["/a[["], "<a/>");
    assert!(!ok);
    assert!(stderr.contains("error"));
}

#[test]
fn malformed_document_fails() {
    let (_, stderr, ok) = run_with_stdin(&["/a/text()"], "<a><b></a>");
    assert!(!ok);
    assert!(stderr.contains("error"));
}

#[test]
fn unknown_engine_is_a_usage_error() {
    let (_, stderr, ok) = run_with_stdin(&["--engine", "nope", "/a"], "<a/>");
    assert!(!ok);
    assert!(stderr.contains("unknown engine"));
}

#[test]
fn dataset_stats_prints_fig15_row() {
    let dir = std::env::temp_dir().join("xsq_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("stats.xml");
    std::fs::write(&file, DOC).unwrap();
    let out = xsq()
        .args(["--dataset-stats", file.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("elements"));
    assert!(stdout.contains("stats.xml"));
}

/// `xsq analyze --json` output is a machine interface (CI smoke tests
/// and editor tooling parse it), so it is pinned by golden snapshots.
/// Regenerate with
/// `xsq analyze --json [--dtd data/dblp.dtd] QUERY > tests/golden/…`.
#[test]
fn analyze_json_matches_golden_snapshots() {
    let root = env!("CARGO_MANIFEST_DIR");
    let dtd = format!("{root}/data/dblp.dtd");
    let cases: [(&str, Option<&str>, &str); 4] = [
        (
            "analyze_article_title.json",
            Some(&dtd),
            "/dblp/article/title/text()",
        ),
        (
            "analyze_inproceedings_author_title.json",
            Some(&dtd),
            "/dblp/inproceedings[author]/title/text()",
        ),
        (
            "analyze_inproceedings_booktitle_author.json",
            Some(&dtd),
            "/dblp/inproceedings[booktitle]/author/text()",
        ),
        (
            "analyze_no_schema.json",
            None,
            "/dblp/inproceedings[author]/title/text()",
        ),
    ];
    for (golden, dtd, query) in cases {
        let mut args = vec!["analyze", "--json"];
        if let Some(d) = dtd {
            args.extend(["--dtd", d]);
        }
        args.push(query);
        let (stdout, stderr, ok) = run_with_stdin(&args, "");
        assert!(ok, "{query}: {stderr}");
        let expected = std::fs::read_to_string(format!("{root}/tests/golden/{golden}")).unwrap();
        assert_eq!(stdout, expected, "snapshot drift for {golden} ({query})");
    }
}

/// The CI bounds smoke contract: with the dblp DTD, the paper's
/// closure-free buffering query must report a *finite* bound — the
/// tentpole's showcase tightening — and the text renderer must carry
/// the derivation.
#[test]
fn analyze_with_dtd_reports_a_finite_bound_for_the_paper_query() {
    let dtd = concat!(env!("CARGO_MANIFEST_DIR"), "/data/dblp.dtd");
    let (stdout, stderr, ok) = run_with_stdin(
        &[
            "analyze",
            "--dtd",
            dtd,
            "/dblp/inproceedings[author]/title/text()",
        ],
        "",
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("memory bound:  ≤ 1 items"), "{stdout}");
    assert!(stdout.contains("[single-instance]"), "{stdout}");
    assert!(!stdout.contains("unbounded"), "{stdout}");
}
