//! Property tests for the schema optimizer: on documents *conforming* to
//! a DTD, (a) queries proven unsatisfiable return nothing, and (b) the
//! closure-elimination rewrite never changes results.

// Property tests are opt-in (`RUSTFLAGS="--cfg xsq_proptest"`): the proptest
// dependency needs network access, and the default test run is hermetic.
#![cfg(xsq_proptest)]

use std::collections::BTreeSet;

use proptest::prelude::*;
use xsq::engine::schema::{analyze, optimize};
use xsq::xml::dtd::Dtd;
use xsq::xpath::parse_query;

const TAGS: [&str; 5] = ["t0", "t1", "t2", "t3", "t4"];

/// A random *acyclic* child relation: tag i may contain only tags > i
/// (so conforming documents always terminate), rooted at t0.
fn dtd_strategy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    // children[i] ⊆ {i+1..5}
    (
        prop::collection::vec(prop::bool::ANY, 4), // t0 -> t1..t4
        prop::collection::vec(prop::bool::ANY, 3), // t1 -> t2..t4
        prop::collection::vec(prop::bool::ANY, 2), // t2 -> t3..t4
        prop::collection::vec(prop::bool::ANY, 1), // t3 -> t4
    )
        .prop_map(|(a, b, c, d)| {
            let pick = |flags: &[bool], base: usize| -> Vec<usize> {
                flags
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &on)| on.then_some(base + i))
                    .collect()
            };
            vec![pick(&a, 1), pick(&b, 2), pick(&c, 3), pick(&d, 4), vec![]]
        })
}

fn build_dtd(children: &[Vec<usize>]) -> Dtd {
    let edges: Vec<(&str, Vec<&str>)> = children
        .iter()
        .enumerate()
        .map(|(i, kids)| (TAGS[i], kids.iter().map(|&k| TAGS[k]).collect()))
        .collect();
    let borrowed: Vec<(&str, &[&str])> = edges.iter().map(|(t, k)| (*t, k.as_slice())).collect();
    Dtd::from_edges(&borrowed)
}

/// Generate a document conforming to the child relation, rooted at t0.
fn conforming_doc(children: &[Vec<usize>], choices: &mut impl Iterator<Item = u8>) -> String {
    fn emit(
        tag: usize,
        children: &[Vec<usize>],
        choices: &mut impl Iterator<Item = u8>,
        out: &mut String,
        budget: &mut u32,
    ) {
        out.push_str(&format!("<{}>", TAGS[tag]));
        let c = choices.next().unwrap_or(0);
        out.push_str(&(c % 10).to_string());
        let kid_count = (choices.next().unwrap_or(0) % 3) as usize;
        for _ in 0..kid_count {
            if *budget == 0 || children[tag].is_empty() {
                break;
            }
            *budget -= 1;
            let pick = choices.next().unwrap_or(0) as usize % children[tag].len();
            emit(children[tag][pick], children, choices, out, budget);
        }
        out.push_str(&format!("</{}>", TAGS[tag]));
    }
    let mut out = String::new();
    let mut budget = 40;
    emit(0, children, choices, &mut out, &mut budget);
    out
}

fn query_strategy() -> impl Strategy<Value = String> {
    let step = (prop::bool::ANY, 0..TAGS.len(), prop::bool::ANY).prop_map(|(closure, t, pred)| {
        format!(
            "{}{}{}",
            if closure { "//" } else { "/" },
            TAGS[t],
            if pred { "[text()>=0]" } else { "" }
        )
    });
    prop::collection::vec(step, 1..4).prop_map(|steps| format!("{}/text()", steps.concat()))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn optimizer_is_sound_on_conforming_documents(
        children in dtd_strategy(),
        raw_choices in prop::collection::vec(any::<u8>(), 0..160),
        query in query_strategy(),
    ) {
        let dtd = build_dtd(&children);
        let mut choices = raw_choices.into_iter();
        let doc = conforming_doc(&children, &mut choices);
        let parsed = parse_query(&query).expect("generated queries parse");
        let roots: BTreeSet<String> = [TAGS[0].to_string()].into();
        let analysis = analyze(&parsed, &dtd, &roots);

        let original = xsq::engine::evaluate(&query, doc.as_bytes()).expect("conforming doc");
        if !analysis.satisfiable {
            prop_assert!(original.is_empty(),
                "proven-empty query {} returned {:?} on {}", query, original, doc);
        }

        // The default-roots rewrite must also be sound (root inference).
        let (optimized, _) = optimize(&parsed, &dtd);
        let rewritten = xsq::engine::evaluate(&optimized.to_string(), doc.as_bytes())
            .expect("rewritten query runs");
        prop_assert_eq!(&original, &rewritten,
            "rewrite {} -> {} changed results on {}", query, optimized, doc);
    }
}
