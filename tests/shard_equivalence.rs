//! Shard-equivalence differential tests: the sharded multi-document
//! driver must produce **byte-identical, document-order-stable** output
//! versus the sequential reference driver — same per-document results,
//! aggregate updates, event counts and memory peaks — across the
//! paper's example queries, at several worker counts, over corpora that
//! mix the figure documents, generated recursive data, and documents
//! exercising the spec-conformance fixes (CRLF text, wrapped
//! attributes).

use xsq::engine::{evaluate, run_sequential, run_sharded, ShardError, ShardOptions};
use xsq::{QueryId, QuerySet, XsqEngine};

/// Figure 1's document (non-recursive, attribute-bearing).
const FIG1: &str = r#"<root>
  <pub>
    <book id="1">
      <price>12.00</price>
      <name>First</name>
      <author>A</author>
      <price type="discount">10.00</price>
    </book>
    <book id="2">
      <price>14.00</price>
      <name>Second</name>
      <author>A</author>
      <author>B</author>
      <price type="discount">12.00</price>
    </book>
    <year>2002</year>
  </pub>
</root>"#;

/// Figure 2's document (recursive `pub`, multiple closure match paths).
const FIG2: &str = r#"<root>
  <pub>
    <book>
      <name>X</name>
      <author>A</author>
    </book>
    <book>
      <name>Y</name>
      <pub>
        <book>
          <name>Z</name>
          <author>B</author>
        </book>
        <year>1999</year>
      </pub>
    </book>
    <year>2002</year>
  </pub>
</root>"#;

/// The paper's example queries (Examples 1–5 shapes plus aggregates),
/// all over the `root/pub/book` vocabulary the corpus shares.
const QUERIES: &[&str] = &[
    "/root/pub[year=2002]/book[price<11]/author/text()",
    "//pub[year=2002]//book[author]//name/text()",
    "//book[@id]/name/text()",
    "//book/@id",
    "//name/text()",
    "//price/sum()",
    "//book/count()",
];

/// A mixed corpus: figure documents, CRLF / wrapped-attribute variants
/// of them (the conformance fixes must not perturb shard merging), and
/// `n` generated recursive documents of varying size and seed.
fn corpus(n: usize) -> Vec<Vec<u8>> {
    let mut docs: Vec<Vec<u8>> = vec![
        FIG1.as_bytes().to_vec(),
        FIG2.as_bytes().to_vec(),
        FIG1.replace('\n', "\r\n").into_bytes(),
        FIG2.replace('\n', "\r").into_bytes(),
        FIG1.replace("id=\"1\"", "id=\"1\r\n\"").into_bytes(),
    ];
    for i in 0..n {
        let params = xsq::datagen::xmlgen::XmlGenParams {
            nested_levels: 3 + (i as u32 % 5),
            max_repeats: 4 + (i as u32 % 7),
            seed: i as u64,
        };
        let target = 2_000 + 3_000 * (i % 4);
        docs.push(xsq::datagen::xmlgen::generate(params, target).into_bytes());
    }
    docs
}

#[test]
fn sharded_output_is_byte_identical_to_sequential() {
    let set = QuerySet::compile(XsqEngine::full(), QUERIES).expect("queries compile");
    let docs = corpus(19); // 24 documents total
    let seq = run_sequential(&set, &docs).expect("sequential run");
    assert!(seq.result_count() > 0, "corpus must produce results");

    for workers in [2, 3, 4, 8] {
        let shard =
            run_sharded(&set, &docs, &ShardOptions::with_workers(workers)).expect("sharded run");
        assert_eq!(
            shard.per_doc, seq.per_doc,
            "sharded ({workers} workers) diverged from sequential"
        );
        // The merged per-query view is therefore byte-identical too.
        for (qi, q) in QUERIES.iter().enumerate() {
            assert_eq!(
                shard.of(QueryId(qi as u32)),
                seq.of(QueryId(qi as u32)),
                "per-query merge diverged for {q}"
            );
        }
    }
}

#[test]
fn sequential_driver_matches_single_query_oracle() {
    // Anchor the whole equivalence chain: the sequential driver itself
    // must agree with N independent single-query engine runs.
    let set = QuerySet::compile(XsqEngine::full(), QUERIES).expect("queries compile");
    let docs = corpus(4);
    let run = run_sequential(&set, &docs).expect("sequential run");
    for (qi, q) in QUERIES.iter().enumerate() {
        if q.contains("sum()") || q.contains("count()") {
            continue; // aggregates fold per document; compared per-doc below
        }
        let mut expected = Vec::new();
        for doc in &docs {
            expected.extend(evaluate(q, doc).expect("single-query run"));
        }
        let got: Vec<String> = run
            .of(QueryId(qi as u32))
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(got, expected, "driver vs oracle on {q}");
    }
    // Aggregates: per-document final values match single-query runs.
    for (qi, q) in QUERIES.iter().enumerate() {
        if !(q.contains("sum()") || q.contains("count()")) {
            continue;
        }
        for (di, doc) in docs.iter().enumerate() {
            let expected = evaluate(q, doc).expect("single-query run");
            let got: Vec<&String> = run.per_doc[di]
                .results
                .iter()
                .filter(|(id, _)| *id == QueryId(qi as u32))
                .map(|(_, v)| v)
                .collect();
            assert_eq!(got.len(), expected.len(), "doc {di} on {q}");
            for (g, e) in got.iter().zip(&expected) {
                assert_eq!(*g, e, "doc {di} on {q}");
            }
        }
    }
}

#[test]
fn parse_error_reports_lowest_doc_with_identical_prefix() {
    let set = QuerySet::compile(XsqEngine::full(), QUERIES).expect("queries compile");
    let mut docs = corpus(10);
    let bad = 7;
    docs[bad] = b"<root><unclosed>".to_vec();

    let seq_err = run_sequential(&set, &docs).expect_err("sequential must fail");
    let ShardError::Document { doc: seq_doc, .. } = seq_err;
    assert_eq!(seq_doc, bad);

    for workers in [2, 4] {
        let mut emitted = Vec::new();
        let err = xsq::engine::run_sharded_with(
            &set,
            &docs,
            &ShardOptions::with_workers(workers),
            |di, out| emitted.push((di, out)),
        )
        .expect_err("sharded must fail");
        let ShardError::Document { doc, .. } = err;
        assert_eq!(doc, bad, "{workers} workers report the lowest failing doc");
        // The emitted prefix is exactly the documents before the failure,
        // in order, with sequential-identical content.
        assert_eq!(emitted.len(), bad);
        let good = run_sequential(&set, &docs[..bad]).expect("prefix runs");
        for (i, (di, out)) in emitted.iter().enumerate() {
            assert_eq!(*di, i);
            assert_eq!(*out, good.per_doc[i], "prefix doc {i}");
        }
    }
}
