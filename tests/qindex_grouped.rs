//! Differential tests for the multi-query paths: the grouped `QuerySet`
//! (prefix-shared, dispatch-indexed) and the dynamic `QueryIndex` must
//! produce exactly the per-query result vectors that N independent
//! `XsqEngine` runs produce — same values, same document order — over
//! generated documents, including deeply recursive ones where closures
//! create many simultaneous match paths.

use xsq::datagen::{xmark, xmlgen, xmlgen::XmlGenParams};
use xsq::engine::evaluate;
use xsq::{QueryIndex, QuerySet, VecQuerySink, XsqEngine};

/// Per-query expected results from N independent single-query runs.
fn individually(queries: &[&str], doc: &[u8]) -> Vec<Vec<String>> {
    queries
        .iter()
        .map(|q| evaluate(q, doc).expect("single-query run"))
        .collect()
}

/// Assert both grouped paths against the per-query oracle.
fn check_grouped(queries: &[&str], doc: &[u8], label: &str) {
    let expected = individually(queries, doc);

    // Path 1: QuerySet::run_document (plans groups once, runs through
    // the query index).
    let set = QuerySet::compile(XsqEngine::full(), queries).expect("set compiles");
    let grouped = set.run_document(doc).expect("grouped run");
    for (i, q) in queries.iter().enumerate() {
        assert_eq!(
            grouped[i], expected[i],
            "[{label}] QuerySet vs single on {q}"
        );
    }

    // Path 2: the subscription API with a shared, id-tagging sink.
    let mut index = QueryIndex::new(XsqEngine::full());
    let ids = index
        .subscribe_group(queries)
        .expect("subscriptions compile");
    let mut sink = VecQuerySink::new();
    index.run_document(doc, &mut sink).expect("index run");
    for (i, q) in queries.iter().enumerate() {
        let got: Vec<String> = sink.of(ids[i]).iter().map(|s| s.to_string()).collect();
        assert_eq!(got, expected[i], "[{label}] QueryIndex vs single on {q}");
    }
}

#[test]
fn grouped_paths_match_single_runs_on_recursive_xmlgen_data() {
    // Recursive documents: `pub` nests inside `pub`, so `//` queries keep
    // many configurations alive at once — the hard case for any shared
    // evaluation that might confuse runners' state.
    let queries = [
        "//pub[year]//book[@id]/title/text()",
        "//pub/book/title/text()",
        "//pub/book/@id",
        "//book/price/text()",
        "//book/count()",
        "/site/pub/year/text()",
        "//price/sum()",
    ];
    for seed in [1u64, 7, 42] {
        let doc = xmlgen::generate(
            XmlGenParams {
                nested_levels: 6,
                max_repeats: 4,
                seed,
            },
            20_000,
        );
        check_grouped(&queries, doc.as_bytes(), &format!("xmlgen seed {seed}"));
    }
}

#[test]
fn grouped_paths_match_single_runs_on_xmark_data() {
    let queries = [
        "/site/regions/region/item/name/text()",
        "/site/regions/region/item/quantity/text()",
        "/site/people/person/name/text()",
        "/site/people/person/@id",
        "//item[quantity]/name/text()",
        "//bidder/increase/text()",
        "//increase/sum()",
        "/site/open_auctions/open_auction/@id",
    ];
    for seed in [3u64, 11] {
        let doc = xmark::generate(seed, 30_000);
        check_grouped(&queries, doc.as_bytes(), &format!("xmark seed {seed}"));
    }
}

#[test]
fn prefix_shared_groups_match_on_templated_query_sets() {
    // The prefix-sharing sweet spot: one shared chain, many divergent
    // tails, including predicates at the divergence point.
    let queries = [
        "/site/pub/book/title/text()",
        "/site/pub/book/price/text()",
        "/site/pub/book/@id",
        "/site/pub/year/text()",
        "/site/pub/book[price]/title/text()",
        "/site/pub/book/count()",
    ];
    let set = QuerySet::compile(XsqEngine::full(), &queries).expect("set compiles");
    assert!(
        set.group_count() < queries.len(),
        "expected prefix sharing to merge some of the {} queries, got {} groups",
        queries.len(),
        set.group_count()
    );
    let doc = xmlgen::generate(
        XmlGenParams {
            nested_levels: 5,
            max_repeats: 5,
            seed: 99,
        },
        15_000,
    );
    check_grouped(&queries, doc.as_bytes(), "templated set");
}

#[test]
fn unsubscribed_queries_do_not_disturb_the_others() {
    let queries = [
        "//pub/book/title/text()",
        "//pub/book/@id",
        "//pub/year/text()",
    ];
    let doc = xmlgen::generate(XmlGenParams::default(), 10_000);
    let expected = individually(&queries, doc.as_bytes());

    let mut index = QueryIndex::new(XsqEngine::full());
    let ids = index
        .subscribe_group(&queries)
        .expect("subscriptions compile");
    index.unsubscribe(ids[1]);
    let mut sink = VecQuerySink::new();
    index.run_document(doc.as_bytes(), &mut sink).expect("run");
    assert_eq!(
        sink.of(ids[0])
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        expected[0]
    );
    assert_eq!(sink.of(ids[1]), Vec::<&str>::new());
    assert_eq!(
        sink.of(ids[2])
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
        expected[2]
    );
}

#[test]
fn the_index_is_reusable_across_a_document_feed() {
    let mut index = QueryIndex::new(XsqEngine::full());
    let id = index.subscribe("//book/title/text()").expect("compiles");
    let mut sink = VecQuerySink::new();
    let mut expected: Vec<String> = Vec::new();
    for seed in 0..4u64 {
        let doc = xmlgen::generate(
            XmlGenParams {
                nested_levels: 4,
                max_repeats: 3,
                seed,
            },
            5_000,
        );
        expected.extend(evaluate("//book/title/text()", doc.as_bytes()).unwrap());
        index.run_document(doc.as_bytes(), &mut sink).expect("run");
    }
    let got: Vec<String> = sink.of(id).iter().map(|s| s.to_string()).collect();
    assert_eq!(got, expected);
    assert_eq!(sink.results.iter().filter(|(i, _)| *i != id).count(), 0);
}
