//! Steady-state allocation audit for the zero-copy event path.
//!
//! The tentpole claim of the interned-symbol refactor is that the
//! no-match common case — tokenise an event, look it up in the dispatch
//! structures, advance automata state — touches the allocator *zero*
//! times per event once the per-parser scratch buffers and the symbol
//! table have warmed up. This test wraps the global allocator in a
//! counting shim, warms the pipeline on the first half of a document,
//! then asserts that the second half (identical record shapes) performs
//! no heap allocation at all.
//!
//! The second half of the file extends the claim to the *matching*
//! steady state: a buffered query firing on every record (anchor,
//! append, predicate flush, emit) must also stop allocating once the
//! per-runner arena, segment table, and queue storage have warmed up —
//! items live in a bump arena recycled at quiescent points, and queue
//! entries clone depth vectors by register copy.
//!
//! Everything lives in one `#[test]` because the counter is global to
//! the test binary: concurrent tests would pollute the count.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use xsq::engine::{CountingSink, VecSink};
use xsq::xml::{ParsePoll, StreamParser};
use xsq::{QueryIndex, VecQuerySink, XsqEngine};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

/// A homogeneous document: many identical record shapes, so whatever
/// capacity the first half of the stream demands, the second half
/// demands no more. Includes attributes and an entity reference to keep
/// the decode paths in the loop.
fn homogeneous_doc(records: usize) -> String {
    let mut doc = String::from("<site>");
    for i in 0..records {
        doc.push_str("<item id=\"");
        doc.push_str(&(i % 97).to_string());
        doc.push_str("\"><name>alpha &amp; beta</name><price>12.50</price></item>");
    }
    doc.push_str("</site>");
    doc
}

#[test]
fn steady_state_no_match_loop_performs_zero_allocations() {
    let doc = homogeneous_doc(400);

    // Queries whose tags never occur in the document: every event takes
    // the no-match path, which the issue requires to be allocation-free.
    let single_query = "//nowhere/text()";
    let index_queries = ["//nowhere/text()", "/void/hole/@id", "//vacant/count()"];

    // Count events once so the measured window can start mid-stream.
    let mut total_events = 0u64;
    {
        let mut p = StreamParser::new(doc.as_bytes());
        while p.next_raw().expect("well-formed").is_some() {
            total_events += 1;
        }
    }
    let warm_events = total_events / 2;
    assert!(
        warm_events > 100,
        "document too small to have a steady state"
    );

    // --- single-query runner hot loop ---------------------------------
    let compiled = XsqEngine::full()
        .compile_str(single_query)
        .expect("compiles");
    let mut runner = compiled.runner();
    let mut sink = VecSink::new();
    let mut parser = StreamParser::new(doc.as_bytes());
    let mut fed = 0u64;
    let mut baseline = 0u64;
    while let Some(ev) = parser.next_raw().expect("well-formed") {
        runner.feed_raw(&ev, &mut sink);
        fed += 1;
        if fed == warm_events {
            baseline = allocations();
        }
    }
    let grew = allocations() - baseline;
    assert!(
        sink.results.is_empty(),
        "query was supposed to match nothing"
    );
    assert_eq!(
        grew,
        0,
        "runner hot loop allocated {grew} times over {} steady-state events",
        total_events - warm_events
    );

    // --- multi-query index hot loop -----------------------------------
    let mut index = QueryIndex::new(XsqEngine::full());
    index
        .subscribe_group(&index_queries)
        .expect("subscriptions compile");
    let mut qsink = VecQuerySink::new();
    let mut parser = StreamParser::new(doc.as_bytes());
    let mut fed = 0u64;
    let mut baseline = 0u64;
    while let Some(ev) = parser.next_raw().expect("well-formed") {
        index.feed_raw(&ev, &mut qsink);
        fed += 1;
        if fed == warm_events {
            baseline = allocations();
        }
    }
    let grew = allocations() - baseline;
    assert_eq!(
        grew,
        0,
        "query-index hot loop allocated {grew} times over {} steady-state events",
        total_events - warm_events
    );

    // --- push-mode parser hot loop ------------------------------------
    // The push path buffers bytes in a ChunkBuf that the pre-scanner
    // walks with the same dispatch kernels as the pull path. Feed the
    // document in 1 KiB chunks, polling to exhaustion between pushes so
    // the buffer compacts: once the first half has sized the scratch
    // buffers and the ChunkBuf, the second half must not allocate.
    let mut parser = StreamParser::push_mode();
    let mut fed = 0u64;
    let mut baseline = 0u64;
    let mut pushed_events = 0u64;
    let half_bytes = doc.len() / 2;
    let mut consumed = 0usize;
    for piece in doc.as_bytes().chunks(1024) {
        parser.push(piece);
        while let ParsePoll::Event(ev) = parser.poll_raw().expect("well-formed") {
            std::hint::black_box(&ev);
            pushed_events += 1;
        }
        consumed += piece.len();
        fed += 1;
        if baseline == 0 && consumed >= half_bytes {
            baseline = allocations();
        }
    }
    parser.finish();
    while let ParsePoll::Event(ev) = parser.poll_raw().expect("well-formed") {
        std::hint::black_box(&ev);
        pushed_events += 1;
    }
    assert_eq!(
        pushed_events, total_events,
        "push path saw a different event stream"
    );
    let grew = allocations() - baseline;
    assert_eq!(
        grew, 0,
        "push-parser hot loop allocated {grew} times over the second half \
         ({fed} chunks total)"
    );

    // ===================================================================
    // Matching steady state: the query FIRES on every record, so every
    // event exercises the full buffered-item machinery — arena anchor,
    // in-place append, predicate-driven queue flush, document-order
    // emission. Once the first half has sized the arena, the segment
    // table, and the queues, the second half must not allocate either.
    // ===================================================================

    // --- engine runner, buffered Items(K) query -----------------------
    // `[price]` resolves *after* <name> streams by in document order, so
    // every name text is anchored into the item arena and held until the
    // predicate decides — the Items(K) buffer class, not pass-through.
    let matching_query = "/site/item[price]/name/text()";
    let compiled = XsqEngine::full()
        .compile_str(matching_query)
        .expect("compiles");
    let mut runner = compiled.runner();
    let mut sink = CountingSink::new();
    let mut parser = StreamParser::new(doc.as_bytes());
    let mut fed = 0u64;
    let mut baseline = 0u64;
    let mut results_at_half = 0u64;
    while let Some(ev) = parser.next_raw().expect("well-formed") {
        runner.feed_raw(&ev, &mut sink);
        fed += 1;
        if fed == warm_events {
            baseline = allocations();
            results_at_half = sink.results;
        }
    }
    let grew = allocations() - baseline;
    assert!(
        sink.results > results_at_half && results_at_half > 0,
        "query must keep matching through both halves \
         ({results_at_half} then {})",
        sink.results
    );
    assert_eq!(
        grew,
        0,
        "matching runner hot loop allocated {grew} times over {} \
         steady-state events ({} results emitted)",
        total_events - warm_events,
        sink.results
    );

    // --- multi-query index, every query firing ------------------------
    struct CountingQuerySink {
        results: u64,
    }
    impl xsq::QuerySink for CountingQuerySink {
        fn result(&mut self, _id: xsq::QueryId, value: &str) {
            self.results += value.len() as u64 + 1;
        }
    }
    let matching_group = [
        "/site/item[price]/name/text()",
        "/site/item/price/text()",
        "/site/item/@id",
    ];
    let mut index = QueryIndex::new(XsqEngine::full());
    index
        .subscribe_group(&matching_group)
        .expect("subscriptions compile");
    let mut qsink = CountingQuerySink { results: 0 };
    let mut parser = StreamParser::new(doc.as_bytes());
    let mut fed = 0u64;
    let mut baseline = 0u64;
    let mut results_at_half = 0u64;
    while let Some(ev) = parser.next_raw().expect("well-formed") {
        index.feed_raw(&ev, &mut qsink);
        fed += 1;
        if fed == warm_events {
            baseline = allocations();
            results_at_half = qsink.results;
        }
    }
    let grew = allocations() - baseline;
    assert!(
        qsink.results > results_at_half && results_at_half > 0,
        "index queries must keep matching through both halves"
    );
    assert_eq!(
        grew,
        0,
        "matching query-index hot loop allocated {grew} times over {} \
         steady-state events",
        total_events - warm_events
    );

    // --- push-mode parser driving a matching runner -------------------
    // The full production shape: bytes pushed in chunks, events polled
    // out, each one fed to a firing buffered query.
    let compiled = XsqEngine::full()
        .compile_str(matching_query)
        .expect("compiles");
    let mut runner = compiled.runner();
    let mut sink = CountingSink::new();
    let mut parser = StreamParser::push_mode();
    let mut baseline = 0u64;
    let mut consumed = 0usize;
    for piece in doc.as_bytes().chunks(1024) {
        parser.push(piece);
        while let ParsePoll::Event(ev) = parser.poll_raw().expect("well-formed") {
            runner.feed_raw(&ev, &mut sink);
        }
        consumed += piece.len();
        if baseline == 0 && consumed >= half_bytes {
            baseline = allocations();
        }
    }
    parser.finish();
    while let ParsePoll::Event(ev) = parser.poll_raw().expect("well-formed") {
        runner.feed_raw(&ev, &mut sink);
    }
    let grew = allocations() - baseline;
    assert!(sink.results > 0, "push-driven query must match");
    assert_eq!(
        grew, 0,
        "push-driven matching pipeline allocated {grew} times over the \
         second half"
    );
}
