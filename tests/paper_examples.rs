//! The paper's running examples, replayed literally.
//!
//! Figure 1 / Example 1: out-of-order predicates force buffering and
//! selective release. Figure 2 / Examples 2, 5, 6, 7: recursive data plus
//! closures create multiple simultaneous match paths; exactly one of
//! them satisfies all predicates.

use xsq::engine::{evaluate, Sink, VecSink, XsqEngine};

/// Figure 1's document (whitespace-normalized).
const FIG1: &str = r#"<root>
  <pub>
    <book id="1">
      <price>12.00</price>
      <name>First</name>
      <author>A</author>
      <price type="discount">10.00</price>
    </book>
    <book id="2">
      <price>14.00</price>
      <name>Second</name>
      <author>A</author>
      <author>B</author>
      <price type="discount">12.00</price>
    </book>
    <year>2002</year>
  </pub>
</root>"#;

/// Figure 2's document.
const FIG2: &str = r#"<root>
  <pub>
    <book>
      <name>X</name>
      <author>A</author>
    </book>
    <book>
      <name>Y</name>
      <pub>
        <book>
          <name>Z</name>
          <author>B</author>
        </book>
        <year>1999</year>
      </pub>
    </book>
    <year>2002</year>
  </pub>
</root>"#;

#[test]
fn example_1_buffers_until_predicates_resolve() {
    // /pub[year=2002]/book[price<11]/author — under the figure's real
    // root element the path starts at root/pub.
    let r = evaluate(
        "/root/pub[year=2002]/book[price<11]/author",
        FIG1.as_bytes(),
    )
    .unwrap();
    // Only book 1 has a price < 11; its author A is the sole result,
    // released when <year>2002 finally satisfies the first predicate.
    assert_eq!(r, ["<author>A</author>"]);
}

#[test]
fn example_1_text_output_variant() {
    let r = evaluate(
        "/root/pub[year=2002]/book[price<11]/author/text()",
        FIG1.as_bytes(),
    )
    .unwrap();
    assert_eq!(r, ["A"]);
}

#[test]
fn example_1_authors_of_book_2_are_discarded() {
    // Tighten the price bound so no book passes: the buffered authors of
    // both books must be cleared, not emitted.
    let r = evaluate(
        "/root/pub[year=2002]/book[price<9]/author/text()",
        FIG1.as_bytes(),
    )
    .unwrap();
    assert!(r.is_empty());
}

#[test]
fn example_1_year_mismatch_discards_everything() {
    let r = evaluate(
        "/root/pub[year=2001]/book[price<11]/author/text()",
        FIG1.as_bytes(),
    )
    .unwrap();
    assert!(r.is_empty());
}

#[test]
fn headline_query_from_the_introduction() {
    // //book[year>2000]/name/text() — Figure 1's books have no year
    // children (year belongs to pub), so the result is empty…
    let r = evaluate("//book[year>2000]/name/text()", FIG1.as_bytes()).unwrap();
    assert!(r.is_empty());
    // …while //pub[year>2000]//name/text() returns both names.
    let r = evaluate("//pub[year>2000]//name/text()", FIG1.as_bytes()).unwrap();
    assert_eq!(r, ["First", "Second"]);
}

#[test]
fn example_2_only_the_satisfying_match_path_survives() {
    // //pub[year=2002]//book[author]//name: three match paths reach the
    // name Z (the paper's table); only pub(line 2) + book(line 10)
    // satisfies both predicates. X also qualifies via pub(2)+book(3).
    // Y's book has no author child.
    let r = evaluate("//pub[year=2002]//book[author]//name", FIG2.as_bytes()).unwrap();
    assert_eq!(r, ["<name>X</name>", "<name>Z</name>"]);
}

#[test]
fn example_2_text_output() {
    let r = evaluate(
        "//pub[year=2002]//book[author]//name/text()",
        FIG2.as_bytes(),
    )
    .unwrap();
    assert_eq!(r, ["X", "Z"]);
}

#[test]
fn example_2_duplicate_avoidance_when_two_paths_satisfy() {
    // The paper: "if we add an author element … for the book element in
    // line 7, the match in the first row would also evaluate both
    // predicates to true. In such cases, we have to avoid duplicates."
    let doc = FIG2.replace("<name>Y</name>", "<name>Y</name><author>C</author>");
    let r = evaluate(
        "//pub[year=2002]//book[author]//name/text()",
        doc.as_bytes(),
    )
    .unwrap();
    // Z now matches via book(7) and book(10) — but appears once; Y's
    // book now qualifies so Y and Z are results, plus X.
    assert_eq!(r, ["X", "Y", "Z"]);
}

#[test]
fn example_2_inner_pub_year_fails() {
    // Restrict to the inner pub's year (1999): no pub satisfies
    // [year=1999] except the inner one, whose book has an author → Z.
    let r = evaluate(
        "//pub[year=1999]//book[author]//name/text()",
        FIG2.as_bytes(),
    )
    .unwrap();
    assert_eq!(r, ["Z"]);
}

#[test]
fn example_4_catchall_element_output() {
    // Fig. 10's query /pub[year>2000] with no output expression emits
    // whole pub elements (catchall transitions).
    let doc = "<pub><book><name>N</name></book><year>2002</year></pub>";
    let r = evaluate("/pub[year>2000]", doc.as_bytes()).unwrap();
    assert_eq!(r, [doc]);
    let doc_no = "<pub><book><name>N</name></book><year>1999</year></pub>";
    let r = evaluate("/pub[year>2000]", doc_no.as_bytes()).unwrap();
    assert!(r.is_empty());
}

#[test]
fn example_5_fig11_walkthrough_on_fig1_stream() {
    // §4.1 walks Fig. 11's HPDT over Figure 1's stream (conceptually:
    // names buffered, uploaded at author, flushed at year>2000).
    let r = evaluate(
        "//pub[year>2000]//book[author]//name/text()",
        FIG1.as_bytes(),
    )
    .unwrap();
    assert_eq!(r, ["First", "Second"]);
}

#[test]
fn example_7_values_between_witness_text_and_end_tag() {
    // The paper's Example 7 worries about a result element arriving
    // after the text event of year but before its end tag (mixed
    // content). The upload definition guarantees it is not lost.
    let doc = "<root><pub><book><author>A</author>\
               <name>Early</name></book>\
               <year>2002<extra/></year>\
               <book><author>B</author><name>Late</name></book></pub></root>";
    let r = evaluate(
        "//pub[year=2002]//book[author]//name/text()",
        doc.as_bytes(),
    )
    .unwrap();
    assert_eq!(r, ["Early", "Late"]);
}

#[test]
fn aggregation_example_from_section_4_4() {
    // //pub[year>2000]//book[author]//name/count() — replacing flush
    // with stat.update; running updates emitted as the stream advances.
    let mut sink = VecSink::new();
    let compiled = XsqEngine::full()
        .compile_str("//pub[year>2000]//book[author]//name/count()")
        .unwrap();
    compiled.run_document(FIG2.as_bytes(), &mut sink).unwrap();
    assert_eq!(sink.results, ["2"]); // X and Z
    assert!(!sink.updates.is_empty(), "running updates must stream");
    assert_eq!(*sink.updates.last().unwrap(), 2.0);
}

#[test]
fn results_stream_as_soon_as_determined() {
    // Feed Figure 1 event by event; the authors must be emitted exactly
    // when the year arrives, not at document end.
    let compiled = XsqEngine::full()
        .compile_str("/root/pub[year=2002]/book[price<11]/author/text()")
        .unwrap();
    let events = xsq::xml::parse_to_events(FIG1.as_bytes()).unwrap();
    let mut runner = compiled.runner();

    struct Probe {
        results: Vec<String>,
    }
    impl Sink for Probe {
        fn result(&mut self, v: &str) {
            self.results.push(v.to_string());
        }
    }
    let mut sink = Probe { results: vec![] };
    let year_text_pos = events
        .iter()
        .position(|e| matches!(e, xsq::xml::SaxEvent::Text { text, .. } if text.trim() == "2002"))
        .unwrap();
    for e in &events[..year_text_pos] {
        runner.feed(e, &mut sink);
    }
    assert!(
        sink.results.is_empty(),
        "nothing should emit before the year"
    );
    runner.feed(&events[year_text_pos], &mut sink);
    assert_eq!(
        sink.results,
        ["A"],
        "the year event releases the buffered author"
    );
}
