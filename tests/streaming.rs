//! Streaming-specific behavior: incremental feeding, bounded memory, the
//! "buffers only what must be buffered" claim, and aggregation over
//! never-ending feeds.

use xsq::datagen;
use xsq::engine::{Sink, VecSink, XsqEngine};
use xsq::xml::SaxEvent;

fn events_of(doc: &str) -> Vec<SaxEvent> {
    xsq::xml::parse_to_events(doc.as_bytes()).unwrap()
}

#[test]
fn memory_stays_flat_while_the_stream_grows() {
    // Stream 50 identical record groups through one runner; peak buffered
    // bytes must not grow with the stream (only with the largest single
    // undecided region).
    let compiled = XsqEngine::full()
        .compile_str("//rec[flag=1]/value/text()")
        .unwrap();
    let one = "<rec><value>0123456789</value><flag>1</flag></rec>";
    let mut runner = compiled.runner();
    let mut sink = VecSink::new();
    runner.feed(&SaxEvent::StartDocument, &mut sink);
    runner.feed(
        &SaxEvent::Begin {
            name: "feed".into(),
            attributes: vec![],
            depth: 1,
        },
        &mut sink,
    );
    let mut group_events = Vec::new();
    for ev in events_of(&format!("<feed>{one}</feed>")) {
        if !matches!(ev, SaxEvent::StartDocument | SaxEvent::EndDocument)
            && ev.name() != Some("feed")
        {
            group_events.push(ev);
        }
    }
    let mut peaks = Vec::new();
    for _ in 0..50 {
        for ev in &group_events {
            runner.feed(ev, &mut sink);
        }
        peaks.push(runner.memory().peak_bytes);
    }
    assert_eq!(sink.results.len(), 50);
    // Peak after 50 groups equals the peak after the first few: memory
    // does not scale with stream length.
    assert_eq!(peaks[4], *peaks.last().unwrap());
}

#[test]
fn aggregation_over_an_unbounded_feed_emits_running_values() {
    let compiled = XsqEngine::full()
        .compile_str("//trade/price/sum()")
        .unwrap();
    let mut runner = compiled.runner();
    let mut sink = VecSink::new();
    runner.feed(&SaxEvent::StartDocument, &mut sink);
    runner.feed(
        &SaxEvent::Begin {
            name: "feed".into(),
            attributes: vec![],
            depth: 1,
        },
        &mut sink,
    );
    for i in 1..=5 {
        for ev in events_of(&format!("<x><trade><price>{i}</price></trade></x>")) {
            // Re-anchor the fragment one level deeper.
            let ev = match ev {
                SaxEvent::StartDocument | SaxEvent::EndDocument => continue,
                SaxEvent::Begin {
                    name,
                    attributes,
                    depth,
                } if name != "x" => SaxEvent::Begin {
                    name,
                    attributes,
                    depth: depth + 1,
                },
                SaxEvent::End { name, depth } if name != "x" => SaxEvent::End {
                    name,
                    depth: depth + 1,
                },
                SaxEvent::Text {
                    element,
                    text,
                    depth,
                } => SaxEvent::Text {
                    element,
                    text,
                    depth: depth + 1,
                },
                other => {
                    // The wrapper <x> becomes a depth-2 element.
                    match other {
                        SaxEvent::Begin {
                            name, attributes, ..
                        } => SaxEvent::Begin {
                            name,
                            attributes,
                            depth: 2,
                        },
                        SaxEvent::End { name, .. } => SaxEvent::End { name, depth: 2 },
                        e => e,
                    }
                }
            };
            runner.feed(&ev, &mut sink);
        }
    }
    // Running sums 1, 3, 6, 10, 15 appeared while the feed was open.
    assert_eq!(sink.updates, vec![1.0, 3.0, 6.0, 10.0, 15.0]);
    assert_eq!(runner.aggregate_value(), Some(15.0));
}

#[test]
fn xsq_buffers_only_undecidable_data() {
    // On the ordering template: a falsified @id predicate is known at the
    // begin event, so nothing buffers; a posterior-gated predicate keeps
    // each group buffered until its end. This is Fig. 21's mechanism.
    let doc = datagen::toxgene::ordering_dataset(40_000, 100);
    let by_id = XsqEngine::full().compile_str("/doc/a[@id=0]").unwrap();
    let by_post = XsqEngine::full()
        .compile_str("/doc/a[posterior=0]")
        .unwrap();
    let mut s1 = VecSink::new();
    let r1 = by_id.run_document(doc.as_bytes(), &mut s1).unwrap();
    let mut s2 = VecSink::new();
    let r2 = by_post.run_document(doc.as_bytes(), &mut s2).unwrap();
    assert!(s1.results.is_empty() && s2.results.is_empty());
    assert_eq!(
        r1.memory.peak_items, 0,
        "@id=0 is falsified at begin: no buffering"
    );
    assert!(
        r2.memory.peak_bytes > 100 * r1.memory.peak_bytes.max(1),
        "posterior-gated groups must be buffered ({} vs {})",
        r2.memory.peak_bytes,
        r1.memory.peak_bytes
    );
}

#[test]
fn buffered_region_bounded_by_one_top_level_group() {
    // Two consecutive groups: the first resolves (and frees) before the
    // second buffers, so peak ≈ one group, not two.
    let one_group = "<g><v>xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx</v><k>1</k></g>";
    let doc2 = format!("<r>{one_group}{one_group}</r>");
    let doc4 = format!("<r>{one_group}{one_group}{one_group}{one_group}</r>");
    let q = "//g[k=1]/v/text()";
    let compiled = XsqEngine::full().compile_str(q).unwrap();
    let mut s = VecSink::new();
    let m2 = compiled
        .run_document(doc2.as_bytes(), &mut s)
        .unwrap()
        .memory;
    let m4 = compiled
        .run_document(doc4.as_bytes(), &mut s)
        .unwrap()
        .memory;
    assert_eq!(
        m2.peak_bytes, m4.peak_bytes,
        "peak must not scale with group count"
    );
}

#[test]
fn results_arrive_in_document_order_even_when_resolved_out_of_order() {
    // The first book resolves late (price at the end), the second early;
    // output order must still be document order.
    let doc = "<pub>\
        <book><name>First</name><price>5</price></book>\
        <book><price>5</price><name>Second</name></book>\
        </pub>";
    let r = xsq::engine::evaluate("/pub/book[price<11]/name/text()", doc.as_bytes()).unwrap();
    assert_eq!(r, ["First", "Second"]);
}

#[test]
fn runner_reset_reuses_the_compiled_query() {
    let compiled = XsqEngine::full().compile_str("//g[k=1]/v/text()").unwrap();
    let mut runner = compiled.runner();
    for (doc, expected) in [
        ("<r><g><v>a</v><k>1</k></g></r>", vec!["a"]),
        ("<r><g><v>b</v><k>0</k></g></r>", vec![]),
        ("<r><g><k>1</k><v>c</v></g></r>", vec!["c"]),
    ] {
        runner.reset();
        let mut sink = VecSink::new();
        for ev in events_of(doc) {
            runner.feed(&ev, &mut sink);
        }
        assert_eq!(sink.results, expected, "{doc}");
        assert_eq!(runner.buffered_entries(), 0);
    }
}

#[test]
fn fnsink_streams_into_a_closure() {
    let compiled = XsqEngine::full().compile_str("//b/text()").unwrap();
    let mut collected = Vec::new();
    {
        let mut sink = xsq::engine::FnSink(|v: &str| collected.push(v.len()));
        compiled
            .run_document(b"<a><b>xy</b><b>z</b></a>", &mut sink)
            .unwrap();
    }
    assert_eq!(collected, [2, 1]);
}

#[test]
fn runner_is_reusable_per_document_via_fresh_instances() {
    let compiled = XsqEngine::full().compile_str("//b/count()").unwrap();
    for n in 1..4 {
        let doc = format!("<a>{}</a>", "<b/>".repeat(n));
        let mut sink = VecSink::new();
        compiled.run_document(doc.as_bytes(), &mut sink).unwrap();
        assert_eq!(sink.results, [n.to_string()]);
    }
}

#[test]
fn sink_trait_objects_compose() {
    struct Tee<'a>(&'a mut Vec<String>, &'a mut u64);
    impl Sink for Tee<'_> {
        fn result(&mut self, v: &str) {
            self.0.push(v.to_string());
            *self.1 += 1;
        }
    }
    let mut values = Vec::new();
    let mut count = 0;
    let compiled = XsqEngine::no_closure().compile_str("/a/b/text()").unwrap();
    compiled
        .run_document(
            b"<a><b>1</b><b>2</b></a>",
            &mut Tee(&mut values, &mut count),
        )
        .unwrap();
    assert_eq!(values, ["1", "2"]);
    assert_eq!(count, 2);
}
