//! Bound-soundness matrix: for every (corpus, query) pair the static
//! memory bound claimed by the schema analyzer must dominate the peak
//! buffered-item count the runtime actually observes
//! (`MemoryStats::peak_buffered_items`). This is the differential test
//! for the analyzer itself — a bound that the engine exceeds on DTD-valid
//! input is a soundness bug, full stop.

use xsq::datagen;
use xsq::engine::{analyze_with_dtd, MemoryBound, VecSink, XsqEngine};
use xsq::xml::dtd::Dtd;
use xsq::xpath::parse_query;

fn dblp_dtd() -> Dtd {
    let text = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/data/dblp.dtd"))
        .expect("data/dblp.dtd readable");
    Dtd::parse(&text).expect("data/dblp.dtd parses")
}

/// Run `query` over `doc` (compiled with the DTD, so queue pre-sizing is
/// active too) and return the observed peak of simultaneous queue
/// entries.
fn observed_peak(query: &str, dtd: &Dtd, doc: &[u8]) -> u64 {
    let compiled = XsqEngine::full()
        .compile_str_with_dtd(query, Some(dtd))
        .expect("query compiles");
    let mut sink = VecSink::new();
    let stats = compiled.run_document(doc, &mut sink).expect("well-formed");
    stats.memory.peak_buffered_items
}

fn claimed(query: &str, dtd: &Dtd) -> MemoryBound {
    let parsed = parse_query(query).unwrap();
    analyze_with_dtd(&parsed, Some(dtd)).unwrap().bound.bound
}

/// Maximum simultaneous open `<tag …>` elements in `doc` — the nesting
/// depth a `PerDepth` bound multiplies by.
fn nesting_depth_of(doc: &str, tag: &str) -> u64 {
    let open = format!("<{tag}");
    let close = format!("</{tag}>");
    let (mut depth, mut max) = (0i64, 0i64);
    let mut i = 0;
    let bytes = doc.as_bytes();
    while i < bytes.len() {
        if doc[i..].starts_with(&close) {
            depth -= 1;
            i += close.len();
        } else if doc[i..].starts_with(&open)
            && matches!(bytes.get(i + open.len()), Some(b'>' | b' ' | b'/'))
        {
            depth += 1;
            max = max.max(depth);
            i += open.len();
        } else {
            i += 1;
        }
    }
    max as u64
}

#[test]
fn dblp_matrix_observed_peak_never_exceeds_the_static_bound() {
    let dtd = dblp_dtd();
    // (query, expected bound) — the paper's Fig. 17/19 workload plus
    // admission-relevant variants. `None` in the expectation means
    // "any", asserted only through the soundness inequality.
    let cases: [(&str, MemoryBound); 6] = [
        ("/dblp/article/title/text()", MemoryBound::Zero),
        ("/dblp/article/@key", MemoryBound::Zero),
        (
            "/dblp/inproceedings[author]/title/text()",
            MemoryBound::Items(1),
        ),
        (
            "/dblp/inproceedings[author]/year/text()",
            MemoryBound::Items(1),
        ),
        (
            "/dblp/inproceedings[booktitle]/title/text()",
            MemoryBound::Items(1),
        ),
        (
            "/dblp/inproceedings[author]/booktitle/text()",
            MemoryBound::Items(1),
        ),
    ];
    for seed in [2, 7, 19] {
        let doc = datagen::dblp::generate(seed, 80_000);
        for (query, expected) in &cases {
            let bound = claimed(query, &dtd);
            assert_eq!(&bound, expected, "{query}");
            let peak = observed_peak(query, &dtd, doc.as_bytes());
            let limit = bound.items().unwrap();
            assert!(
                peak <= limit,
                "{query} (seed {seed}): observed peak {peak} > static bound {limit}"
            );
        }
    }
}

#[test]
fn unbounded_verdicts_are_honest_about_growth() {
    // author* really is unbounded per record: the observed peak grows
    // with the widest record, and the analyzer refuses to bound it.
    let dtd = dblp_dtd();
    let query = "/dblp/inproceedings[booktitle]/author/text()";
    assert!(matches!(
        claimed(query, &dtd),
        MemoryBound::Unbounded { .. }
    ));
    let doc = datagen::dblp::generate(2, 80_000);
    // No inequality to check — just that the machinery runs and buffers.
    let peak = observed_peak(query, &dtd, doc.as_bytes());
    assert!(peak >= 1, "expected some buffering, saw none");
}

#[test]
fn per_depth_bounds_scale_with_observed_nesting_depth() {
    let dtd = Dtd::parse(
        "<!ELEMENT pub (year?, book?, pub?)>\
         <!ELEMENT book (name, author?)> <!ELEMENT year (#PCDATA)>\
         <!ELEMENT name (#PCDATA)> <!ELEMENT author (#PCDATA)>",
    )
    .unwrap();
    let query = "//pub[year=2002]/book/name/text()";
    let bound = claimed(query, &dtd);
    let MemoryBound::PerDepth(k) = bound else {
        panic!("expected PerDepth, got {bound:?}");
    };
    // Three nested pubs, each with an undecided [year=2002] while its
    // book streams: peak ≤ k × depth.
    let doc = "<pub><book><name>a</name></book>\
               <pub><book><name>b</name></book>\
               <pub><book><name>c</name></book><year>2002</year></pub>\
               <year>1999</year></pub>\
               <year>2002</year></pub>";
    let depth = nesting_depth_of(doc, "pub");
    assert_eq!(depth, 3);
    let peak = observed_peak(query, &dtd, doc.as_bytes());
    assert!(
        peak <= k * depth,
        "observed peak {peak} > PerDepth({k}) × depth {depth}"
    );
}

#[test]
fn queue_presizing_from_the_bound_changes_no_results() {
    // The Items(K) hint pre-sizes queues; results and counts must be
    // identical with and without the schema.
    let dtd = dblp_dtd();
    let doc = datagen::dblp::generate(11, 60_000);
    for query in [
        "/dblp/inproceedings[author]/title/text()",
        "/dblp/article/title/text()",
        "/dblp/inproceedings[booktitle]/author/text()",
    ] {
        let plain = XsqEngine::full().compile_str(query).unwrap();
        let hinted = XsqEngine::full()
            .compile_str_with_dtd(query, Some(&dtd))
            .unwrap();
        let mut a = VecSink::new();
        let mut b = VecSink::new();
        plain.run_document(doc.as_bytes(), &mut a).unwrap();
        hinted.run_document(doc.as_bytes(), &mut b).unwrap();
        assert_eq!(a.results, b.results, "{query}");
    }
}
